/**
 * @file
 * The cycle-accurate MIPS-X pipeline model.
 *
 * Five pipestages (Figure 1): IF, RF, ALU, MEM, WB. One instruction
 * starts every cycle; the only stalls are whole-pipeline freezes caused
 * by withholding the qualified w1 clock on an instruction-cache miss or
 * an external-cache late miss (see miss_fsm.hh). Results commit in WB
 * (delayed writeback), two levels of bypassing feed the ALU inputs, and
 * the machine has *no hardware interlocks*: an instruction that reads the
 * target of the immediately preceding load observes the old register
 * value — the software reorganizer must schedule around the load delay.
 *
 * Branches compute their condition in ALU, giving a branch delay of two;
 * squashing branches convert the two slot instructions to no-ops when the
 * branch resolves against the direction their slots were scheduled for.
 * Exceptions halt the pipeline: the Exception line no-ops the MEM and ALU
 * stages, the Squash line no-ops RF and IF, the frozen PC chain keeps the
 * three PCs needed for restart, PSW -> PSWold, and fetch vectors to
 * address 0 in system space.
 */

#ifndef MIPSX_CORE_CPU_HH
#define MIPSX_CORE_CPU_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include <ostream>

#include "assembler/program.hh"
#include "common/types.hh"
#include "coproc/coprocessor.hh"
#include "core/miss_fsm.hh"
#include "core/pc_unit.hh"
#include "core/psw.hh"
#include "core/squash_fsm.hh"
#include "isa/instruction.hh"
#include "memory/bus.hh"
#include "memory/ecache.hh"
#include "memory/icache.hh"
#include "memory/main_memory.hh"
#include "stats/energy.hh"
#include "trace/trace.hh"

namespace mipsx::trace
{
class MetricsRegistry;
} // namespace mipsx::trace

namespace mipsx::core
{

/** Static configuration of one CPU instance. */
struct CpuConfig
{
    memory::ICacheConfig icache{};
    memory::ECacheConfig ecache{};

    /**
     * Per-event cost table for the first-order energy model; priced
     * against the cache counters after a run (stats/energy.hh) and
     * exported as the "energy.*" metrics keys. Purely derived — no
     * timing behaviour depends on it.
     */
    stats::EnergyCosts energy{};

    /**
     * Architectural branch delay: 2 for the real machine, 1 for the
     * quick-compare design point of the branch study (Table 1's one-slot
     * schemes). With a delay of 1 branches resolve at the end of RF.
     */
    unsigned branchDelay = 2;

    /**
     * Model the rejected "non-cached coprocessor instruction" interface:
     * coprocessor instructions always miss in the instruction cache and
     * are picked up off the memory bus during the miss cycle.
     */
    bool coprocNonCachedFetch = false;

    /** Count (and optionally stop on) load-delay scheduling violations. */
    bool detectHazards = true;
    bool stopOnHazard = false;

    /**
     * Fault injection for the paper's restartability claim ("all
     * instructions are restartable so MIPS-X will support a dynamic,
     * paged virtual memory system"): the external memory system raises
     * a data page fault the first time this word is accessed. The
     * faulting memory instruction is killed *before* its MEM cycle and
     * sits at the head of the frozen PC chain, so the standard restart
     * sequence re-executes it — a soft-TLB-miss round trip.
     */
    bool pageFaultArmed = false;
    AddressSpace pageFaultSpace = AddressSpace::User;
    addr_t pageFaultAddr = 0;

    word_t initialPsw = isa::psw_bits::shiftEn; ///< user mode, chain on
    cycle_t maxCycles = 200'000'000;

    // Multiprocessor integration (optional; see memory/bus.hh and
    // mp/multi_machine.hh). The bus arbiter charges extra stall cycles
    // when the shared bus is busy; the coherence hub snoops stores.
    memory::BusArbiter *bus = nullptr;
    memory::CoherenceHub *coherence = nullptr;
    unsigned cpuId = 0;

    /**
     * Reject ill-formed configurations (branchDelay outside 1..2, a
     * zero cycle budget, bad cache geometries) with a SimError. The
     * Cpu constructor calls this; config builders call it directly.
     */
    void validate() const;
};

/** Why a run stopped. */
enum class StopReason : std::uint8_t
{
    Running = 0,
    Halt,          ///< trap 0x1ffff retired
    Fail,          ///< trap 0x1fffe retired (workload self-check failed)
    MaxCycles,
    InvalidInstruction,
    UnhandledException, ///< vectored to 0 but no handler is loaded
    HazardViolation,    ///< load-delay violation with stopOnHazard
    CommitLimit,        ///< a caller-imposed retire-count cut was reached
};

const char *stopReasonName(StopReason r);

/** Aggregate pipeline statistics. */
struct PipelineStats
{
    cycle_t cycles = 0;
    std::uint64_t committed = 0;     ///< instructions retired (incl. nops)
    std::uint64_t committedNops = 0; ///< canonical no-ops retired
    std::uint64_t nopsInBranchSlots = 0;
    std::uint64_t nopsForLoadDelay = 0;
    std::uint64_t squashed = 0; ///< instructions converted to no-ops

    std::uint64_t branches = 0; ///< conditional branches resolved
    std::uint64_t branchesTaken = 0;
    std::uint64_t branchSquashTriggers = 0; ///< branches that squashed
    std::uint64_t branchWastedSlots = 0;    ///< nop/squashed/useless slots
    std::uint64_t jumps = 0;
    std::uint64_t jumpWastedSlots = 0;

    std::uint64_t traps = 0;
    std::uint64_t exceptions = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t hazardViolations = 0;

    bool operator==(const PipelineStats &) const = default;

    double cpi() const
    {
        return committed ? static_cast<double>(cycles) / committed : 0.0;
    }
    /** Fraction of retired instructions that are no-ops (paper: 15.6%). */
    double noopFraction() const
    {
        return committed ? static_cast<double>(committedNops) / committed
                         : 0.0;
    }
    /** Table 1's metric: average cycles per conditional branch. */
    double cyclesPerBranch() const
    {
        return branches
            ? 1.0 + static_cast<double>(branchWastedSlots) / branches
            : 0.0;
    }
    double cyclesPerJump() const
    {
        return jumps ? 1.0 + static_cast<double>(jumpWastedSlots) / jumps
                     : 0.0;
    }
};

/** Result of Cpu::run(). */
struct RunResult
{
    StopReason reason = StopReason::Running;
    cycle_t cycles = 0;
    std::uint64_t instructions = 0;

    bool halted() const { return reason == StopReason::Halt; }
};

/** The pipelined CPU. */
class Cpu
{
  public:
    Cpu(const CpuConfig &config, memory::MainMemory &mem);

    /** Attach a coprocessor at number @p num (1..7). */
    void attachCoprocessor(unsigned num,
                           std::unique_ptr<coproc::Coprocessor> cop);
    coproc::Coprocessor &coprocessor(unsigned num) const
    {
        return cops_.at(num);
    }

    /**
     * Provide the program image so delay-slot provenance annotations can
     * be consulted for the branch-cost statistics. Optional.
     */
    void
    setProgram(const assembler::Program *prog)
    {
        prog_ = prog;
        slotSec_ = nullptr;
    }

    /** Reset all pipeline state and begin fetching at @p entry. */
    void reset(addr_t entry);

    /** Run until the workload halts or a stop condition hits. */
    RunResult run();

    /**
     * Run until at least @p target instructions have retired (or a
     * stop condition hits first). The pause happens *between* steps
     * without entering a stopped state: at most one instruction
     * retires per step, so the cut lands exactly at the requested
     * retire count and a later run()/runUntilCommitted() resumes with
     * the identical step sequence an uninterrupted run would have
     * executed. The result's reason stays Running when the target cut
     * the run (the interval engine maps that to CommitLimit); stop_
     * is never set, so stopped() remains false.
     */
    RunResult runUntilCommitted(std::uint64_t target);

    /** Execute one w1-clocked cycle (plus any stall cycles it causes). */
    void step();

    /**
     * Advance exactly one cycle: consume one pending stall cycle if the
     * w1 clock is withheld, else execute one pipeline cycle. This is the
     * granularity the multiprocessor uses to interleave CPUs.
     */
    void tick();

    bool stopped() const { return stop_ != StopReason::Running; }
    StopReason stopReason() const { return stop_; }

    // External events.
    void raiseInterrupt() { pendingIntr_ = true; }
    void raiseNmi() { pendingNmi_ = true; }

    /** One retired instruction, as observed at writeback. */
    struct RetireEvent
    {
        cycle_t cycle = 0;
        addr_t pc = 0;
        AddressSpace space = AddressSpace::User;
        word_t raw = 0;
        bool squashed = false; ///< retired as a squashed no-op
    };

    /** Observe every retiring instruction (tracing / co-simulation). */
    void
    setRetireHook(std::function<void(const RetireEvent &)> hook)
    {
        retireHook_ = std::move(hook);
    }

    /**
     * Attach (or detach, with nullptr) an event trace buffer. The CPU
     * records pipeline micro-events into it; a null pointer keeps the
     * hot path at a single test per emission site.
     */
    void setTrace(trace::TraceBuffer *buf) { trace_ = buf; }
    trace::TraceBuffer *traceBuffer() const { return trace_; }

    // Architectural state access (for tests, loaders and checkers).
    word_t gpr(unsigned r) const { return regs_.at(r); }
    void setGpr(unsigned r, word_t v);
    word_t md() const { return md_; }
    const Psw &psw() const { return psw_; }
    void
    setPsw(word_t bits)
    {
        psw_.setBits(bits);
        chainSteady_ = false; // shiftEn may have changed under us
    }
    const PcChain &pcChain() const { return chain_; }

    // Fast-forward state transfer (Machine hands the ISS's architectural
    // state to a freshly reset pipeline; see MachineConfig::fastForward).
    void setMd(word_t v) { md_ = v; }
    void setPswOld(word_t bits) { pswOld_.setBits(bits); }
    void setPcChainEntry(unsigned i, word_t v) { chain_.write(i, v); }

    // Component access.
    const memory::ICache &icache() const { return icache_; }
    memory::ICache &icache() { return icache_; }
    const memory::ECache &ecache() const { return ecache_; }
    memory::ECache &ecache() { return ecache_; }

    /** The event counts the energy model prices (stats/energy.hh). */
    stats::EnergyCounts energyCounts() const;
    const SquashFsm &squashFsm() const { return squashFsm_; }
    const CacheMissFsm &missFsm() const { return missFsm_; }
    const PipelineStats &stats() const { return stats_; }
    const CpuConfig &config() const { return config_; }

    /** Dump every statistic as uniform "group.key value" lines. */
    void dumpStats(std::ostream &os) const;

    /**
     * Export every statistic dumpStats() prints into @p m as named
     * counters ("cpu<N>.pipeline.cycles", "cpu<N>.icache.misses", ...).
     */
    void collectMetrics(trace::MetricsRegistry &m) const;

  private:
    /** One pipeline latch (the instruction occupying a stage). */
    struct Latch
    {
        bool valid = false;
        bool killed = false;       ///< no write-back / no side effects
        bool squashKilled = false; ///< killed by a branch squash
        isa::Instruction inst;
        addr_t pc = 0;
        AddressSpace space = AddressSpace::User;
        word_t opA = 0;   ///< resolved first operand (after bypass)
        word_t opB = 0;   ///< resolved second operand / store data
        word_t aluOut = 0;
        word_t memData = 0; ///< load / movfrc data captured in MEM
        word_t mdOut = 0;
        bool writesMdOut = false;
        word_t pswOut = 0;
        bool writesPswOut = false;
        word_t chainOut = 0;   ///< movtos pchainN value
        int chainIndex = -1;   ///< which chain entry movtos writes
        word_t jpcEntry = 0;   ///< chain entry popped at RF by jpc
    };

    // Per-cycle phases.
    void stepCycle();
    void commitWb();
    void evaluateAlu();
    void resolveControl(Latch &l); ///< branch/jump resolution
    void takeException(word_t cause);
    void executeMem();
    Latch &fetch();

    /** Charge a main-memory transaction, arbitrating for the bus. */
    unsigned busTransaction(unsigned duration);

    /** Resolve a GPR read at the ALU inputs, applying the bypasses. */
    word_t readOperand(unsigned r);
    /** Resolve the MD register as seen by the ALU stage. */
    word_t readMd() const;
    /** Read a special register at the ALU stage. */
    word_t readSpecial(isa::SpecialReg sreg) const;

    void stopSim(StopReason r) { stop_ = r; }

    CpuConfig config_;
    memory::MainMemory &ram_;
    memory::ICache icache_;
    memory::ECache ecache_;
    coproc::CoprocessorSet cops_;
    const assembler::Program *prog_ = nullptr;
    const assembler::Section *slotSec_ = nullptr; ///< last slot lookup hit

    // Architectural state.
    std::array<word_t, numGprs> regs_{};
    word_t md_ = 0;
    Psw psw_;
    Psw pswOld_;
    PcChain chain_;

    // Pipeline state. rf_/alu_/mem_/wb_ point at the latch holding the
    // instruction in that stage this cycle; the IF-stage instruction is
    // produced by fetch() into spare_. The per-cycle pipeline shift is a
    // rotation of these five pointers, not a copy of the latches.
    std::array<Latch, 5> latches_;
    Latch *rf_ = &latches_[0];
    Latch *alu_ = &latches_[1];
    Latch *mem_ = &latches_[2];
    Latch *wb_ = &latches_[3];
    Latch *spare_ = &latches_[4];
    addr_t fetchPc_ = 0;
    bool haveRedirect_ = false;
    addr_t redirect_ = 0;
    bool redirectKill_ = false;  ///< this redirect re-injects a squashed
                                 ///< chain entry (set by jpc)
    bool fetchKillArmed_ = false; ///< kill the word fetched this cycle
    bool squashFetch_ = false;  ///< this cycle's fetch is squashed
    bool suppressFetch_ = false; ///< halting / exception entry
    bool halting_ = false;

    bool pendingIntr_ = false;
    bool pendingNmi_ = false;

    /**
     * True when the PC chain shifted last cycle and nothing else has
     * touched it since, so this cycle's shift can reuse the recorded
     * oldest entry (see PcChain::shiftSteady).
     */
    bool chainSteady_ = false;

    // Pending per-branch slot accounting (slot 2 is the word fetched the
    // cycle the branch resolves).
    struct PendingBranchCost
    {
        bool active = false;
        bool conditional = false;
        bool taken = false;
        bool squashed = false;
    } pendingCost_;
    void accountSlot(const Latch &slot, const PendingBranchCost &pb);
    /** Delay-slot provenance of the instruction in @p l (stats only). */
    assembler::SlotKind slotOf(const Latch &l);

    SquashFsm squashFsm_;
    CacheMissFsm missFsm_;
    StopReason stop_ = StopReason::Running;
    PipelineStats stats_;
    std::function<void(const RetireEvent &)> retireHook_;
    trace::TraceBuffer *trace_ = nullptr; ///< null = tracing disabled

    /** Record one trace event (no-op when tracing is disabled). */
    void
    emitTrace(trace::EventKind kind, addr_t pc, AddressSpace space,
              word_t raw, bool has_inst, std::uint32_t arg = 0)
    {
        trace_->record({stats_.cycles, pc, raw, arg, kind, space,
                        has_inst});
    }
};

} // namespace mipsx::core

#endif // MIPSX_CORE_CPU_HH
