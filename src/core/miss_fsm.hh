/**
 * @file
 * The cache-miss finite state machine (paper Figure 4).
 *
 * MIPS-X stalls the *entire* pipeline on a cache miss by withholding the
 * qualified w1 clock: "when either cache misses, the w1 clock does not
 * rise, and the control state does not shift down the pipeline control
 * latches. The lack of a w1 clock causes the machine to execute the
 * previous phase-2 before retrying the phase-1." This FSM sequences those
 * stall cycles — two per instruction-cache miss (during which the two
 * fetch-back words return), and one retry loop per external-cache late
 * miss that repeats until the Ecache signals a hit.
 */

#ifndef MIPSX_CORE_MISS_FSM_HH
#define MIPSX_CORE_MISS_FSM_HH

#include <array>
#include <cstdint>

namespace mipsx::core
{

/** States of the cache-miss FSM. */
enum class MissState : std::uint8_t
{
    Run = 0,    ///< w1 rises; the pipeline advances
    IMiss = 1,  ///< servicing an instruction-cache miss
    EMiss = 2,  ///< re-executing MEM phase 2 (Ecache late miss)
};

inline constexpr unsigned numMissStates = 3;

class CacheMissFsm
{
  public:
    /** An instruction-cache miss needing @p cycles of service begins. */
    void
    startIMiss(unsigned cycles)
    {
        state_ = MissState::IMiss;
        remaining_ += cycles;
    }

    /** An Ecache late miss: retry MEM phase 2 for @p cycles. */
    void
    startEMiss(unsigned cycles)
    {
        state_ = MissState::EMiss;
        remaining_ += cycles;
    }

    /** True while w1 is withheld and the pipeline must not advance. */
    bool stalled() const { return remaining_ > 0; }

    /** Record a normal (w1-clocked) execution cycle. */
    void
    noteRun()
    {
        ++occupancy_[static_cast<unsigned>(MissState::Run)];
    }

    /** Consume one stall cycle (w1 withheld). Requires stalled(). */
    void
    tick()
    {
        ++occupancy_[static_cast<unsigned>(state_)];
        --remaining_;
        if (remaining_ == 0)
            state_ = MissState::Run;
    }

    /**
     * Consume every outstanding stall cycle at once. Equivalent to
     * calling tick() until stalled() clears — the state cannot change
     * mid-drain (only stepCycle() starts new misses) — but without the
     * per-cycle loop. Returns the number of cycles consumed.
     */
    unsigned
    drainStalls()
    {
        const unsigned n = remaining_;
        occupancy_[static_cast<unsigned>(state_)] += n;
        remaining_ = 0;
        state_ = MissState::Run;
        return n;
    }

    MissState state() const { return state_; }

    std::uint64_t
    occupancy(MissState s) const
    {
        return occupancy_[static_cast<unsigned>(s)];
    }

    void
    reset()
    {
        state_ = MissState::Run;
        remaining_ = 0;
        occupancy_ = {};
    }

  private:
    MissState state_ = MissState::Run;
    unsigned remaining_ = 0;
    std::array<std::uint64_t, numMissStates> occupancy_{};
};

} // namespace mipsx::core

#endif // MIPSX_CORE_MISS_FSM_HH
