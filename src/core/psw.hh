/**
 * @file
 * The processor status word (PSW) and its shadow, PSWold.
 *
 * The PSW carries the mode bit (system/user — the current mode selects
 * the address space and can only be changed in system mode), interrupt
 * enable, the overflow-trap mask, the PC-chain shift enable and the
 * exception cause bits. On an exception the current PSW is placed in
 * PSWold, interrupts are turned off and the machine enters system mode.
 */

#ifndef MIPSX_CORE_PSW_HH
#define MIPSX_CORE_PSW_HH

#include "common/types.hh"
#include "isa/isa.hh"

namespace mipsx::core
{

/** A thin typed wrapper around the PSW word. */
class Psw
{
  public:
    Psw() = default;
    explicit Psw(word_t bits) : bits_(bits) {}

    word_t bits() const { return bits_; }
    void setBits(word_t b) { bits_ = b; }

    bool systemMode() const { return bits_ & isa::psw_bits::mode; }
    bool interruptsEnabled() const { return bits_ & isa::psw_bits::ie; }
    bool overflowTrapEnabled() const { return bits_ & isa::psw_bits::ovfe; }
    bool shiftEnabled() const { return bits_ & isa::psw_bits::shiftEn; }

    AddressSpace
    space() const
    {
        return systemMode() ? AddressSpace::System : AddressSpace::User;
    }

    /**
     * Build the PSW the exception hardware installs: system mode,
     * interrupts off, PC-chain shifting frozen, @p cause recorded.
     * The overflow-trap mask is preserved.
     */
    static Psw
    exceptionEntry(const Psw &current, word_t cause)
    {
        word_t b = isa::psw_bits::mode | cause;
        if (current.overflowTrapEnabled())
            b |= isa::psw_bits::ovfe;
        return Psw(b);
    }

  private:
    word_t bits_ = 0;
};

} // namespace mipsx::core

#endif // MIPSX_CORE_PSW_HH
