/**
 * @file
 * The squash finite state machine (paper Figure 3).
 *
 * One FSM handles both instruction squashing for mispredicted squashing
 * branches and pipeline squashing on exceptions — the paper's squash
 * proponents argued (correctly, as it turned out) that the hardware
 * needed to freeze the pipeline during an exception could implement
 * squashing branches with "only a single extra input".
 *
 * The FSM drives the two kill lines of the machine:
 *  - Squash    no-ops the instructions currently in the IF and RF stages;
 *  - Exception no-ops the instructions currently in the ALU and MEM
 *    stages (and gates writes to MD and the PSW).
 *
 * Like the real implementation ("simple shift registers with a very small
 * amount of random logic"), the states are trivial; the class exists so
 * the control structure is explicit, testable, and its occupancy can be
 * reported (experiment E9).
 */

#ifndef MIPSX_CORE_SQUASH_FSM_HH
#define MIPSX_CORE_SQUASH_FSM_HH

#include <array>
#include <cstdint>

namespace mipsx::core
{

/** States of the squash FSM. */
enum class SquashState : std::uint8_t
{
    Run = 0,       ///< normal execution
    BranchSquash = 1, ///< squashing the two branch-slot instructions
    Exception = 2, ///< exception entry: squash everything in flight
};

inline constexpr unsigned numSquashStates = 3;

/** Kill lines asserted by the FSM for the current cycle. */
struct SquashOutputs
{
    bool squashIfRf = false;   ///< the Squash line
    bool killAluMem = false;   ///< the Exception line
};

class SquashFsm
{
  public:
    /**
     * Advance one cycle.
     *
     * @param branch_squash a squashing branch resolved against its
     *        prediction this cycle (the single extra input).
     * @param exception an exception is being taken this cycle.
     */
    SquashOutputs
    tick(bool branch_squash, bool exception)
    {
        SquashOutputs out;
        if (exception) {
            state_ = SquashState::Exception;
            out.squashIfRf = true;
            out.killAluMem = true;
        } else if (branch_squash) {
            state_ = SquashState::BranchSquash;
            out.squashIfRf = true;
        } else {
            state_ = SquashState::Run;
        }
        ++occupancy_[static_cast<unsigned>(state_)];
        return out;
    }

    SquashState state() const { return state_; }

    /** Cycles spent in each state (experiment E9). */
    std::uint64_t
    occupancy(SquashState s) const
    {
        return occupancy_[static_cast<unsigned>(s)];
    }

    void
    reset()
    {
        state_ = SquashState::Run;
        occupancy_ = {};
    }

  private:
    SquashState state_ = SquashState::Run;
    std::array<std::uint64_t, numSquashStates> occupancy_{};
};

} // namespace mipsx::core

#endif // MIPSX_CORE_SQUASH_FSM_HH
