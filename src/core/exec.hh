/**
 * @file
 * Pure execution semantics of MX32 compute operations, shared by the
 * functional simulator (golden model) and the pipeline model so the two
 * can never drift apart.
 */

#ifndef MIPSX_CORE_EXEC_HH
#define MIPSX_CORE_EXEC_HH

#include <array>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace mipsx::core
{

/** Result of a compute operation. */
struct ComputeResult
{
    word_t value = 0;  ///< ALU/shifter output (destined for rd)
    word_t md = 0;     ///< new MD register value
    bool writesMd = false;
    bool overflow = false; ///< signed overflow (add/sub/addi)
};

/** 32-bit add with signed-overflow detection. */
inline ComputeResult
addOverflow(word_t a, word_t b)
{
    ComputeResult r;
    r.value = a + b;
    // Overflow iff the operands agree in sign and the result does not.
    r.overflow = (~(a ^ b) & (a ^ r.value)) >> 31;
    return r;
}

/** 32-bit subtract with signed-overflow detection. */
inline ComputeResult
subOverflow(word_t a, word_t b)
{
    ComputeResult r;
    r.value = a - b;
    r.overflow = ((a ^ b) & (a ^ r.value)) >> 31;
    return r;
}

/**
 * The 64-bit-to-32-bit funnel shifter: extract 32 bits of {hi:lo}
 * starting @p pos bits up from the bottom of lo.
 */
inline word_t
funnelShift(word_t hi, word_t lo, unsigned pos)
{
    const std::uint64_t both = (static_cast<std::uint64_t>(hi) << 32) | lo;
    return static_cast<word_t>(both >> (pos & 31));
}

/**
 * One multiply step through the MD register (MSB-first shift-and-add).
 *
 * With the multiplier in MD and an accumulator cleared to zero, 32
 * repetitions of `mstep r, r, B` compute r = MD0 * B (mod 2^32):
 *
 *     result = (acc << 1) + (MD[31] ? b : 0);   MD <<= 1
 */
inline ComputeResult
mstep(word_t acc, word_t b, word_t md)
{
    ComputeResult r;
    r.value = (acc << 1) + ((md >> 31) ? b : 0u);
    r.md = md << 1;
    r.writesMd = true;
    return r;
}

/**
 * One restoring-division step through the MD register.
 *
 * With the dividend in MD and the remainder accumulator cleared, 32
 * repetitions of `dstep r, r, D` leave the unsigned quotient in MD and
 * the remainder in r:
 *
 *     t = (acc << 1) | MD[31];  MD <<= 1
 *     if (t >= d) { t -= d; MD |= 1 }
 *     result = t
 */
inline ComputeResult
dstep(word_t acc, word_t d, word_t md)
{
    ComputeResult r;
    word_t t = (acc << 1) | (md >> 31);
    word_t q = md << 1;
    if (t >= d && d != 0) {
        t -= d;
        q |= 1;
    }
    r.value = t;
    r.md = q;
    r.writesMd = true;
    return r;
}

/**
 * Compute semantics with the opcode resolved at compile time: the one
 * inline definition behind both the computeDispatch table entries and
 * any per-op threaded handler, so an execute loop that already knows
 * the opcode (its dispatch key names it) pays no second dispatch —
 * the operation folds into the handler body.
 */
template <isa::ComputeOp Op>
inline ComputeResult
computeFor(const isa::Instruction &in, word_t a, word_t b, word_t md)
{
    using isa::ComputeOp;
    if constexpr (Op == ComputeOp::Add)
        return addOverflow(a, b);
    else if constexpr (Op == ComputeOp::Sub)
        return subOverflow(a, b);
    else if constexpr (Op == ComputeOp::And)
        return {a & b, 0, false, false};
    else if constexpr (Op == ComputeOp::Or)
        return {a | b, 0, false, false};
    else if constexpr (Op == ComputeOp::Xor)
        return {a ^ b, 0, false, false};
    else if constexpr (Op == ComputeOp::Bic)
        return {a & ~b, 0, false, false};
    // All shifts run through the funnel shifter, as in the real
    // datapath (a 64-to-32-bit funnel shifter plus the ALU).
    else if constexpr (Op == ComputeOp::Sll) {
        if (in.aux == 0)
            return {a, 0, false, false};
        return {funnelShift(a, 0, 32 - in.aux), 0, false, false};
    } else if constexpr (Op == ComputeOp::Srl)
        return {funnelShift(0, a, in.aux), 0, false, false};
    else if constexpr (Op == ComputeOp::Sra) {
        const word_t sign = (a >> 31) ? 0xffffffffu : 0u;
        return {funnelShift(sign, a, in.aux), 0, false, false};
    } else if constexpr (Op == ComputeOp::Fsh)
        return {funnelShift(a, b, in.aux), 0, false, false};
    else if constexpr (Op == ComputeOp::Mstep)
        return mstep(a, b, md);
    else if constexpr (Op == ComputeOp::Dstep)
        return dstep(a, b, md);
    else
        static_assert(Op == ComputeOp::Add,
                      "computeFor: opcode has no pure-execute semantics");
}

/** Branch-condition semantics with the condition resolved at compile
    time (same role as computeFor, for the 3-bit condition field). */
template <isa::BranchCond Cond>
inline bool
branchCondFor(word_t a, word_t b)
{
    using isa::BranchCond;
    if constexpr (Cond == BranchCond::Eq)
        return a == b;
    else if constexpr (Cond == BranchCond::Ne)
        return a != b;
    else if constexpr (Cond == BranchCond::Lt)
        return static_cast<sword_t>(a) < static_cast<sword_t>(b);
    else if constexpr (Cond == BranchCond::Ge)
        return static_cast<sword_t>(a) >= static_cast<sword_t>(b);
    else if constexpr (Cond == BranchCond::Hs)
        return a >= b;
    else if constexpr (Cond == BranchCond::Lo)
        return a < b;
    else if constexpr (Cond == BranchCond::T)
        return true;
    else
        static_assert(Cond == BranchCond::Eq,
                      "branchCondFor: reserved condition");
}

/** One entry of the compute dispatch table. */
using ComputeFn = ComputeResult (*)(const isa::Instruction &in, word_t a,
                                    word_t b, word_t md);

/** One entry of the branch-condition dispatch table. */
using BranchCondFn = bool (*)(word_t a, word_t b);

/**
 * Function-pointer dispatch tables, indexed by the raw ComputeOp /
 * BranchCond field (6 and 3 bits wide respectively). Null entries mark
 * opcodes with no pure-execute semantics: reserved encodings, and
 * movfrs/movtos, which touch machine state the caller owns.
 */
extern const std::array<ComputeFn, 64> computeDispatch;
extern const std::array<BranchCondFn, 8> branchCondDispatch;

/** Cold path behind executeCompute(): reports the unhandled opcode. */
[[noreturn]] void computeUnhandled(const isa::Instruction &in);

/** Cold path behind branchTaken(): reports the reserved condition. */
[[noreturn]] void branchCondUnhandled(isa::BranchCond cond);

/**
 * Execute a compute-format operation (excluding movfrs/movtos, which
 * touch machine state the caller owns). A single indexed call through
 * computeDispatch — the switch it replaced is kept as
 * executeComputeRef() for differential tests.
 *
 * @param in decoded instruction (fmt == Compute)
 * @param a first operand (R[rs1])
 * @param b second operand (R[rs2])
 * @param md current MD register value
 */
inline ComputeResult
executeCompute(const isa::Instruction &in, word_t a, word_t b, word_t md)
{
    const ComputeFn fn =
        computeDispatch[static_cast<std::size_t>(in.compOp)];
    if (fn) [[likely]]
        return fn(in, a, b, md);
    computeUnhandled(in);
}

/** Evaluate a branch condition on two register values (table dispatch). */
inline bool
branchTaken(isa::BranchCond cond, word_t a, word_t b)
{
    const BranchCondFn fn =
        branchCondDispatch[static_cast<std::size_t>(cond) & 7];
    if (fn) [[likely]]
        return fn(a, b);
    branchCondUnhandled(cond);
}

/**
 * Branch-condition evaluation that inlines at the call site: a dense
 * switch over branchCondFor<>. For execute loops that dispatch on an
 * opcode class coarser than the condition (the ISS has one branch
 * handler for all seven conditions), where the table's indirect call
 * would be a second dispatch on an already-paid-for path.
 */
inline bool
branchTakenInline(isa::BranchCond cond, word_t a, word_t b)
{
    using isa::BranchCond;
    switch (cond) {
      case BranchCond::Eq:
        return branchCondFor<BranchCond::Eq>(a, b);
      case BranchCond::Ne:
        return branchCondFor<BranchCond::Ne>(a, b);
      case BranchCond::Lt:
        return branchCondFor<BranchCond::Lt>(a, b);
      case BranchCond::Ge:
        return branchCondFor<BranchCond::Ge>(a, b);
      case BranchCond::Hs:
        return branchCondFor<BranchCond::Hs>(a, b);
      case BranchCond::Lo:
        return branchCondFor<BranchCond::Lo>(a, b);
      case BranchCond::T:
        return branchCondFor<BranchCond::T>(a, b);
      default:
        branchCondUnhandled(cond);
    }
}

/** Reference implementation of executeCompute() as the original switch. */
ComputeResult executeComputeRef(const isa::Instruction &in, word_t a,
                                word_t b, word_t md);

/** Reference implementation of branchTaken() as the original switch. */
bool branchTakenRef(isa::BranchCond cond, word_t a, word_t b);

} // namespace mipsx::core

#endif // MIPSX_CORE_EXEC_HH
