/**
 * @file
 * Pure execution semantics of MX32 compute operations, shared by the
 * functional simulator (golden model) and the pipeline model so the two
 * can never drift apart.
 */

#ifndef MIPSX_CORE_EXEC_HH
#define MIPSX_CORE_EXEC_HH

#include "common/types.hh"
#include "isa/instruction.hh"

namespace mipsx::core
{

/** Result of a compute operation. */
struct ComputeResult
{
    word_t value = 0;  ///< ALU/shifter output (destined for rd)
    word_t md = 0;     ///< new MD register value
    bool writesMd = false;
    bool overflow = false; ///< signed overflow (add/sub/addi)
};

/** 32-bit add with signed-overflow detection. */
ComputeResult addOverflow(word_t a, word_t b);

/** 32-bit subtract with signed-overflow detection. */
ComputeResult subOverflow(word_t a, word_t b);

/**
 * The 64-bit-to-32-bit funnel shifter: extract 32 bits of {hi:lo}
 * starting @p pos bits up from the bottom of lo.
 */
word_t funnelShift(word_t hi, word_t lo, unsigned pos);

/**
 * One multiply step through the MD register (MSB-first shift-and-add).
 *
 * With the multiplier in MD and an accumulator cleared to zero, 32
 * repetitions of `mstep r, r, B` compute r = MD0 * B (mod 2^32):
 *
 *     result = (acc << 1) + (MD[31] ? b : 0);   MD <<= 1
 */
ComputeResult mstep(word_t acc, word_t b, word_t md);

/**
 * One restoring-division step through the MD register.
 *
 * With the dividend in MD and the remainder accumulator cleared, 32
 * repetitions of `dstep r, r, D` leave the unsigned quotient in MD and
 * the remainder in r:
 *
 *     t = (acc << 1) | MD[31];  MD <<= 1
 *     if (t >= d) { t -= d; MD |= 1 }
 *     result = t
 */
ComputeResult dstep(word_t acc, word_t d, word_t md);

/**
 * Execute a compute-format operation (excluding movfrs/movtos, which
 * touch machine state the caller owns).
 *
 * @param in decoded instruction (fmt == Compute)
 * @param a first operand (R[rs1])
 * @param b second operand (R[rs2])
 * @param md current MD register value
 */
ComputeResult executeCompute(const isa::Instruction &in, word_t a, word_t b,
                             word_t md);

/** Evaluate a branch condition on two register values. */
bool branchTaken(isa::BranchCond cond, word_t a, word_t b);

} // namespace mipsx::core

#endif // MIPSX_CORE_EXEC_HH
