#include "reorg/cfg.hh"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/bitfield.hh"
#include "common/sim_error.hh"
#include "isa/decode.hh"

namespace mipsx::reorg
{

using isa::Format;
using isa::ImmOp;

namespace
{

bool
endsBlock(const isa::Instruction &in)
{
    return in.isControl();
}

/** Can control fall through past this terminator? */
bool
fallsThrough(const isa::Instruction &in)
{
    if (in.isBranch())
        return in.cond != isa::BranchCond::T;
    if (in.fmt == Format::Imm) {
        switch (in.immOp) {
          case ImmOp::Jal:
          case ImmOp::Jalr:
            return true; // the return point follows the call
          case ImmOp::Trap:
            // halt/fail never return; other traps resume after a
            // handler fix-up.
            return in.uimm != isa::trapCodeHalt &&
                in.uimm != isa::trapCodeFail;
          default:
            return false; // jmp, jr, jpc
        }
    }
    return false;
}

/** Does this control transfer have a statically known target? */
bool
staticTarget(const isa::Instruction &in)
{
    if (in.isBranch())
        return true;
    return in.fmt == Format::Imm &&
        (in.immOp == ImmOp::Jmp || in.immOp == ImmOp::Jal);
}

} // namespace

Cfg
Cfg::build(const assembler::Section &text,
           const std::vector<addr_t> &symbol_addrs)
{
    Cfg cfg;
    const auto n = text.words.size();
    if (n == 0)
        return cfg;

    std::vector<isa::Instruction> insts(n);
    std::set<std::size_t> leaders;
    leaders.insert(0);
    std::set<std::size_t> labelled;
    for (const addr_t a : symbol_addrs) {
        if (a >= text.base && a < text.base + n) {
            leaders.insert(a - text.base);
            labelled.insert(a - text.base);
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        insts[i] = isa::decode(text.words[i]);
        const auto &in = insts[i];
        if (!endsBlock(in))
            continue;
        if (i + 1 < n)
            leaders.insert(i + 1);
        if (staticTarget(in)) {
            const std::int64_t t =
                static_cast<std::int64_t>(i) + 1 + in.imm;
            if (t < 0 || t >= static_cast<std::int64_t>(n))
                fatal(strformat("reorg: control transfer at +%zu targets "
                                "outside the section", i));
            leaders.insert(static_cast<std::size_t>(t));
        }
    }

    // Slice into blocks.
    std::unordered_map<std::size_t, int> blockOf; // leader index -> block
    std::vector<std::size_t> starts(leaders.begin(), leaders.end());
    for (std::size_t b = 0; b < starts.size(); ++b)
        blockOf[starts[b]] = static_cast<int>(b);

    cfg.blocks_.resize(starts.size());
    for (std::size_t b = 0; b < starts.size(); ++b) {
        const std::size_t lo = starts[b];
        const std::size_t hi =
            b + 1 < starts.size() ? starts[b + 1] : n;
        BasicBlock &blk = cfg.blocks_[b];
        for (std::size_t i = lo; i < hi; ++i) {
            InstrNode node;
            node.id = cfg.nextId_++;
            node.inst = insts[i];
            node.origAddr = text.base + static_cast<addr_t>(i);
            if (endsBlock(insts[i])) {
                if (i + 1 != hi)
                    fatal("reorg: control instruction not at block end");
                blk.term = node;
                if (staticTarget(insts[i])) {
                    const auto t = static_cast<std::size_t>(
                        static_cast<std::int64_t>(i) + 1 + insts[i].imm);
                    blk.targetBlock = blockOf.at(t);
                }
            } else {
                blk.body.push_back(node);
            }
        }
        const bool falls = !blk.hasTerm() || fallsThrough(blk.term->inst);
        if (falls && b + 1 < starts.size())
            blk.fallBlock = static_cast<int>(b + 1);
    }

    // Predecessor counts (saturating; ~0 means "unknowable").
    auto bump = [&cfg](int b) {
        if (b >= 0 && cfg.blocks_[b].preds != ~0u)
            ++cfg.blocks_[b].preds;
    };
    cfg.blocks_[0].preds = ~0u; // the entry
    for (const auto idx : labelled)
        cfg.blocks_[blockOf.at(idx)].preds = ~0u;
    for (auto &blk : cfg.blocks_) {
        bump(blk.fallBlock);
        bump(blk.targetBlock);
        // Return points (after calls) can be reached by any jr.
        if (blk.hasTerm() && blk.term->inst.fmt == Format::Imm &&
            (blk.term->inst.immOp == ImmOp::Jal ||
             blk.term->inst.immOp == ImmOp::Jalr) &&
            blk.fallBlock >= 0) {
            cfg.blocks_[blk.fallBlock].preds = ~0u;
        }
    }
    return cfg;
}

std::size_t
Cfg::size() const
{
    std::size_t total = 0;
    for (const auto &b : blocks_) {
        total += b.body.size() + b.slots.size();
        if (b.hasTerm())
            ++total;
    }
    return total;
}

NodeId
Cfg::landingNode(int block, unsigned skip) const
{
    while (true) {
        if (block < 0)
            fatal("reorg: control transfer lands past the section");
        const BasicBlock &b = blocks_[static_cast<std::size_t>(block)];
        if (skip < b.body.size())
            return b.body[skip].id;
        skip -= static_cast<unsigned>(b.body.size());
        if (b.hasTerm()) {
            if (skip != 0)
                fatal("reorg: target skip runs past a terminator");
            return b.term->id;
        }
        block = b.fallBlock;
    }
}

assembler::Section
Cfg::emit(const assembler::Section &proto, addr_t base,
          std::vector<std::pair<addr_t, addr_t>> *addr_map) const
{
    // Pass 1: assign final addresses by node id.
    std::unordered_map<NodeId, addr_t> addrOf;
    addr_t pc = base;
    auto place = [&addrOf, &pc](const InstrNode &node) {
        addrOf[node.id] = pc++;
    };
    for (const auto &b : blocks_) {
        for (const auto &node : b.body)
            place(node);
        if (b.hasTerm())
            place(b.term.value());
        for (const auto &node : b.slots)
            place(node);
    }

    // Pass 2: emit, fixing control displacements against the layout.
    assembler::Section out;
    out.name = proto.name;
    out.space = proto.space;
    out.isText = true;
    out.base = base;

    auto emit_node = [&](const InstrNode &node, const BasicBlock &blk) {
        word_t raw = node.inst.raw;
        if (node.inst.isBranch() ||
            (node.inst.fmt == Format::Imm &&
             (node.inst.immOp == ImmOp::Jmp ||
              node.inst.immOp == ImmOp::Jal))) {
            const NodeId land = blk.landingId != invalidNode
                ? blk.landingId
                : landingNode(blk.targetBlock, 0);
            const std::int64_t disp =
                static_cast<std::int64_t>(addrOf.at(land)) -
                (static_cast<std::int64_t>(addrOf.at(node.id)) + 1);
            const unsigned width = node.inst.isBranch() ? 15 : 17;
            if (!fitsSigned(disp, width))
                fatal("reorg: relocated control target out of range");
            raw = insertBits(raw, width - 1, 0,
                             static_cast<word_t>(disp));
        }
        out.words.push_back(raw);
        out.slots.push_back(static_cast<std::uint8_t>(node.slot));
    };

    for (const auto &b : blocks_) {
        for (const auto &node : b.body)
            emit_node(node, b);
        if (b.hasTerm())
            emit_node(b.term.value(), b);
        for (const auto &node : b.slots)
            emit_node(node, b);
    }

    if (addr_map) {
        // Originals first (slot == None), then moved/copied instances
        // for addresses not otherwise covered.
        std::set<addr_t> seen;
        addr_t a = base;
        auto record = [&](const InstrNode &node, bool originals) {
            const bool original =
                node.slot == assembler::SlotKind::None;
            if (original == originals &&
                node.origAddr != ~addr_t{0} && !seen.count(node.origAddr)) {
                seen.insert(node.origAddr);
                addr_map->emplace_back(node.origAddr, addrOf.at(node.id));
            }
            (void)a;
        };
        for (int pass = 0; pass < 2; ++pass) {
            for (const auto &b : blocks_) {
                for (const auto &node : b.body)
                    record(node, pass == 0);
                if (b.hasTerm())
                    record(b.term.value(), pass == 0);
                for (const auto &node : b.slots)
                    record(node, pass == 0);
            }
        }
    }
    return out;
}

} // namespace mipsx::reorg
