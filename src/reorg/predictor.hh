/**
 * @file
 * Branch-prediction models for the paper's branch study.
 *
 * "There were two prediction algorithms tried: branch cache, and static
 * prediction. The branch cache was quickly discarded when we discovered
 * that it had to be fairly large (much greater than 16 entries) to get a
 * high hit rate. ... Besides, it never did much better than static
 * prediction and was much more complex."
 *
 * These models consume the dynamic branch stream (sim::BranchEvent) and
 * report direction-prediction accuracy, reproducing that comparison
 * (experiment E5).
 */

#ifndef MIPSX_REORG_PREDICTOR_HH
#define MIPSX_REORG_PREDICTOR_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/iss.hh"
#include "stats/stats.hh"

namespace mipsx::reorg
{

/** Common accounting for all prediction models. */
class PredictorModel
{
  public:
    virtual ~PredictorModel() = default;

    /** Observe one resolved conditional branch. */
    void
    record(const sim::BranchEvent &ev)
    {
        if (!ev.conditional)
            return;
        ++seen_;
        if (predict(ev) == ev.taken)
            ++correct_;
        update(ev);
    }

    std::uint64_t seen() const { return seen_.value(); }
    double accuracy() const { return stats::ratio(correct_, seen_); }

    virtual const char *name() const = 0;

  protected:
    virtual bool predict(const sim::BranchEvent &ev) = 0;
    virtual void update(const sim::BranchEvent &ev) { (void)ev; }

  private:
    stats::Counter seen_;
    stats::Counter correct_;
};

/** Static: predict every branch taken. */
class AlwaysTakenModel : public PredictorModel
{
  public:
    const char *name() const override { return "static always-taken"; }

  protected:
    bool predict(const sim::BranchEvent &) override { return true; }
};

/** Static: backward taken, forward not taken (the loop heuristic). */
class BackwardTakenModel : public PredictorModel
{
  public:
    const char *name() const override { return "static backward-taken"; }

  protected:
    bool
    predict(const sim::BranchEvent &ev) override
    {
        return ev.target <= ev.pc;
    }
};

/**
 * Static with profiling: per-branch majority direction from a previous
 * run of the same workload (feed the profile with addProfile first).
 */
class ProfileModel : public PredictorModel
{
  public:
    void
    addProfile(const sim::BranchEvent &ev)
    {
        auto &p = profile_[ev.pc];
        ++p.total;
        if (ev.taken)
            ++p.taken;
    }

    const char *name() const override { return "static profiled"; }

  protected:
    bool
    predict(const sim::BranchEvent &ev) override
    {
        auto it = profile_.find(ev.pc);
        if (it == profile_.end())
            return ev.target <= ev.pc; // fall back to the heuristic
        return it->second.taken * 2 >= it->second.total;
    }

  private:
    struct Entry
    {
        std::uint64_t taken = 0;
        std::uint64_t total = 0;
    };
    std::map<addr_t, Entry> profile_;
};

/**
 * The branch cache ("branch target buffer"): a small set-associative
 * memory of recently executed branches with a 2-bit direction counter.
 * A branch that misses in the cache predicts not-taken.
 */
class BranchCacheModel : public PredictorModel
{
  public:
    explicit BranchCacheModel(unsigned entries, unsigned ways = 1);

    const char *name() const override { return "branch cache"; }
    unsigned entries() const { return entries_; }

    /** Fraction of branches that hit in the cache. */
    double hitRate() const { return stats::ratio(hits_, lookups_); }

  protected:
    bool predict(const sim::BranchEvent &ev) override;
    void update(const sim::BranchEvent &ev) override;

  private:
    struct Line
    {
        bool valid = false;
        addr_t tag = 0;
        std::uint8_t counter = 2; ///< 2-bit saturating, >=2 = taken
        std::uint64_t lastUse = 0;
    };

    Line *find(addr_t pc);
    Line &allocate(addr_t pc);

    unsigned entries_;
    unsigned ways_;
    unsigned sets_;
    std::vector<Line> lines_;
    std::uint64_t clock_ = 0;

    stats::Counter lookups_;
    stats::Counter hits_;
};

} // namespace mipsx::reorg

#endif // MIPSX_REORG_PREDICTOR_HH
