#include "reorg/scheduler.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/bitfield.hh"
#include "common/sim_error.hh"
#include "isa/decode.hh"
#include "isa/encode.hh"

namespace mipsx::reorg
{

using assembler::SlotKind;
using isa::BranchCond;
using isa::ComputeOp;
using isa::Format;
using isa::ImmOp;
using isa::Instruction;
using isa::MemOp;
using isa::SpecialReg;
using isa::SquashType;

const char *
branchSchemeName(BranchScheme s)
{
    switch (s) {
      case BranchScheme::NoSquash: return "no-squash";
      case BranchScheme::AlwaysSquash: return "always-squash";
      case BranchScheme::SquashOptional: return "squash-optional";
    }
    return "?";
}

namespace
{

// Dependence analysis (ResSet, defsOf/usesOf, movable, independent,
// memConflict) lives in reorg/dag.{hh,cc} now, shared with the DAG
// scheduling backends and the tests.

// ---------------------------------------------------------------------
// The scheduler proper
// ---------------------------------------------------------------------

class Scheduler
{
  public:
    Scheduler(Cfg &cfg, const ReorgConfig &config, ReorgStats &stats)
        : cfg_(cfg), config_(config), stats_(stats)
    {}

    void
    run()
    {
        computePins();
        computeLiveness();
        for (std::size_t b = 0; b < cfg_.blocks().size(); ++b)
            scheduleTerminator(static_cast<int>(b));
        if (!config_.fillLoadDelay)
            return;
        if (config_.scheduler == SchedulerKind::Heuristic) {
            for (std::size_t b = 0; b < cfg_.blocks().size(); ++b)
                loadPass(static_cast<int>(b));
        } else {
            // DAG backends: reorder every block body first, then insert
            // no-ops for whatever load hazards the orders left behind.
            for (std::size_t b = 0; b < cfg_.blocks().size(); ++b)
                dagReorder(static_cast<int>(b));
            for (std::size_t b = 0; b < cfg_.blocks().size(); ++b)
                fixupLoads(static_cast<int>(b));
        }
        // Cross-block seams (a load as a block's last executed
        // instruction feeding the first instruction of an exit path)
        // are invisible to the per-block passes above; repair them
        // everywhere, mirroring verifySchedule's exit-edge checks.
        for (std::size_t b = 0; b < cfg_.blocks().size(); ++b)
            fixupSeams(static_cast<int>(b));
    }

  private:
    BasicBlock &blk(int b) { return cfg_.blocks()[std::size_t(b)]; }

    /** First executed instruction reached by (block, skip), or null. */
    const InstrNode *
    landing(int block, unsigned skip) const
    {
        while (block >= 0) {
            const BasicBlock &b = cfg_.blocks()[std::size_t(block)];
            if (skip < b.body.size())
                return &b.body[skip];
            skip -= static_cast<unsigned>(b.body.size());
            if (b.hasTerm())
                return &b.term.value();
            block = b.fallBlock;
        }
        return nullptr;
    }

    void
    computePins()
    {
        for (const auto &b : cfg_.blocks()) {
            if (b.targetBlock >= 0) {
                if (const auto *n = landing(b.targetBlock, 0))
                    pinned_.insert(n->id);
            }
        }
        for (std::size_t i = 0; i < cfg_.blocks().size(); ++i) {
            const auto &b = cfg_.blocks()[i];
            if (b.preds == ~0u) {
                if (const auto *n = landing(static_cast<int>(i), 0))
                    pinned_.insert(n->id);
            }
        }
    }

    /** Predicted probability that this terminator's branch is taken. */
    double
    predictTaken(int b) const
    {
        const BasicBlock &blk = cfg_.blocks()[std::size_t(b)];
        const Instruction &t = blk.term->inst;
        if (!t.isBranch() || t.cond == BranchCond::T)
            return 1.0;
        if (config_.prediction == Prediction::AlwaysTaken)
            return 0.85;
        if (config_.prediction == Prediction::Profile) {
            auto it = config_.profile.find(blk.term->origAddr);
            if (it != config_.profile.end())
                return it->second;
        }
        // Static heuristic: backward (loop) branches are taken.
        return blk.targetBlock <= b ? 0.85 : 0.3;
    }

    // -- Liveness (for the wrong-path-harmless fills) --------------------

    static std::uint32_t
    gprMask(const ResSet &s)
    {
        return static_cast<std::uint32_t>(s.bits & 0xffffffffu);
    }

    static constexpr std::uint32_t allLive = 0xfffffffeu; // r0 excluded

    /**
     * Classic backward dataflow over the (pre-scheduling) CFG. Unknown
     * control transfers (jr/jalr/jpc, resumable traps) make everything
     * live, which conservatively disables wrong-path fills near them.
     */
    void
    computeLiveness()
    {
        const auto &B = cfg_.blocks();
        liveIn_.assign(B.size(), 0);
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t bi = B.size(); bi-- > 0;) {
                const auto &b = B[bi];
                std::uint32_t out = 0;
                if (b.hasTerm()) {
                    const auto &t = b.term->inst;
                    const bool unknown =
                        (t.fmt == Format::Imm &&
                         (t.immOp == ImmOp::Jr || t.immOp == ImmOp::Jalr ||
                          t.immOp == ImmOp::Jpc)) ||
                        (t.isTrap() && t.uimm != isa::trapCodeHalt &&
                         t.uimm != isa::trapCodeFail);
                    if (unknown)
                        out = allLive;
                }
                if (b.targetBlock >= 0)
                    out |= liveIn_[std::size_t(b.targetBlock)];
                if (b.fallBlock >= 0)
                    out |= liveIn_[std::size_t(b.fallBlock)];
                std::uint32_t in = out;
                auto apply = [&in](const Instruction &i) {
                    in &= ~gprMask(defsOf(i));
                    in |= gprMask(usesOf(i));
                };
                if (b.hasTerm())
                    apply(b.term->inst);
                for (std::size_t k = b.body.size(); k-- > 0;)
                    apply(b.body[k].inst);
                if (in != liveIn_[bi]) {
                    liveIn_[bi] = in;
                    changed = true;
                }
            }
        }
    }

    std::uint32_t
    liveAtEntry(int block) const
    {
        return block >= 0 ? liveIn_[std::size_t(block)] : allLive;
    }

    /**
     * Can @p in execute on the path the branch does NOT take without
     * changing that path's results? (The paper's second no-squash fill
     * rule: "instructions from the destination or the sequential path
     * that have no effect if the branch goes the wrong way".)
     */
    static bool
    harmlessWrongPath(const Instruction &in, std::uint32_t live_mask)
    {
        if (!movable(in) || in.isStore() || in.isCoproc() ||
            in.writesSpecial()) {
            return false;
        }
        const unsigned rd = in.destReg();
        if (rd == 0)
            return false;
        return (live_mask & (1u << rd)) == 0;
    }

    // -- Candidate collection ------------------------------------------

    /**
     * Longest legal hoist suffix of @p b's body, at most @p want long.
     * The returned instructions (in program order) can be placed after
     * the terminator; @p execTaken / @p execFall say on which paths the
     * slots will execute (for the last-slot load rule).
     */
    /**
     * Pick up to @p want body instructions to hoist past the
     * terminator, scanning backward and *skipping over* instructions
     * the candidates are independent of (the Gross/Hennessy-style
     * scheduling that makes slot filling effective). Returns the
     * selected body indices in program order.
     */
    std::vector<std::size_t>
    selectHoist(int b, unsigned want)
    {
        BasicBlock &blk = this->blk(b);
        const Instruction &term = blk.term->inst;

        std::vector<std::size_t> picked; // reverse program order
        // Accumulated defs/uses of everything the candidate must move
        // across: the terminator plus every skipped instruction.
        ResSet accDefs = defsOf(term);
        ResSet accUses = usesOf(term);
        bool accStore = isStoreOp(term);
        bool accMem = term.accessesMemory();

        for (std::size_t p = blk.body.size(); p-- > 0;) {
            if (picked.size() >= want)
                break;
            const InstrNode &x = blk.body[p];
            // Never move an instruction across a landing point (a
            // retargeted branch enters the block there); nothing above
            // one may hoist either, so stop the scan.
            if (pinned_.count(x.id))
                break;
            const Instruction &in = x.inst;
            const ResSet dx = defsOf(in), ux = usesOf(in);
            const bool movesOk = movable(in) &&
                !dx.intersects(accUses) && !dx.intersects(accDefs) &&
                !ux.intersects(accDefs) &&
                !(isStoreOp(in) && accMem) &&
                !(isLoadOp(in) && accStore);
            if (movesOk) {
                picked.push_back(p);
            } else {
                // x stays: later candidates must be independent of it.
                accDefs.bits |= dx.bits;
                accUses.bits |= ux.bits;
                accStore = accStore || isStoreOp(in);
                accMem = accMem || in.accessesMemory();
            }
        }
        std::reverse(picked.begin(), picked.end());
        return picked;
    }

    std::vector<InstrNode>
    hoistCandidates(int b, unsigned want, bool exec_taken, bool exec_fall)
    {
        BasicBlock &blk = this->blk(b);
        for (unsigned w = want; w > 0; --w) {
            const auto picked = selectHoist(b, w);
            if (picked.empty())
                return {};
            std::vector<InstrNode> out;
            for (const auto p : picked)
                out.push_back(blk.body[p]);
            if (slotLoadsOk(b, out, want, exec_taken, exec_fall,
                            /*target_skip=*/0)) {
                hoistPicked_ = picked;
                return out;
            }
        }
        return {};
    }

    /**
     * Longest copyable prefix of the target block's body, at most
     * @p want long (the branch will be retargeted past the copies).
     */
    std::vector<InstrNode>
    targetCandidates(int b, unsigned want)
    {
        BasicBlock &blk = this->blk(b);
        if (blk.targetBlock < 0)
            return {};
        std::vector<InstrNode> out;
        copyOrigins_.clear();
        // Walk the taken path (following fall-through block boundaries,
        // exactly as a landing walk does) copying movable instructions.
        int cur = blk.targetBlock;
        unsigned i = 0;
        while (out.size() < want && cur >= 0) {
            const BasicBlock &tgt = cfg_.blocks()[std::size_t(cur)];
            if (i >= tgt.body.size()) {
                if (tgt.hasTerm())
                    break; // cannot copy control
                cur = tgt.fallBlock;
                i = 0;
                continue;
            }
            if (!movable(tgt.body[i].inst))
                break;
            InstrNode copy = tgt.body[i];
            copy.id = cfg_.newNode();
            copy.slot = SlotKind::BrFromTarget;
            copyOrigins_.push_back(tgt.body[i].id);
            out.push_back(copy);
            ++i;
        }
        // Trim until the last-slot load rule holds at the new landing.
        while (!out.empty() &&
               !slotLoadsOk(b, out, want, /*taken=*/true, /*fall=*/false,
                            static_cast<unsigned>(out.size()))) {
            out.pop_back();
        }
        return out;
    }

    /**
     * Longest movable prefix of the fall-through block (only when this
     * block is its sole predecessor), at most @p want long.
     */
    std::vector<InstrNode>
    fallCandidates(int b, unsigned want)
    {
        BasicBlock &blk = this->blk(b);
        if (blk.fallBlock < 0)
            return {};
        BasicBlock &fall = cfg_.blocks()[std::size_t(blk.fallBlock)];
        if (fall.preds != 1)
            return {};
        std::vector<InstrNode> out;
        for (unsigned i = 0; i < fall.body.size() && out.size() < want;
             ++i) {
            if (!movable(fall.body[i].inst) ||
                pinned_.count(fall.body[i].id)) {
                break;
            }
            InstrNode moved = fall.body[i];
            moved.slot = SlotKind::BrFromFall;
            out.push_back(moved);
        }
        // The moved instructions run on the fall path only; validate the
        // last-slot load rule against what remains of the fall block.
        while (!out.empty()) {
            // Temporarily peek at the post-move landing.
            const InstrNode *land =
                landing(blk.fallBlock,
                        static_cast<unsigned>(out.size()));
            const InstrNode &lastNode = out.back();
            bool ok = true;
            if (lastNode.inst.isGprLoad() &&
                lastNode.inst.destReg() != 0 && land &&
                usesOf(land->inst).hasGpr(lastNode.inst.destReg())) {
                ok = false;
            }
            if (ok && !internalLoadsOk(out))
                ok = false;
            if (ok)
                break;
            out.pop_back();
        }
        return out;
    }

    /**
     * No-squash fill from the taken path: a prefix of the target block
     * whose destinations are dead on the fall path. The branch is
     * retargeted past the copies; on fall-through they execute
     * harmlessly.
     */
    std::vector<InstrNode>
    specTargetCandidates(int b, unsigned want,
                         const std::vector<InstrNode> &hoisted)
    {
        BasicBlock &blk = this->blk(b);
        if (blk.targetBlock < 0 || blk.fallBlock < 0)
            return {};
        const std::uint32_t fallLive = liveAtEntry(blk.fallBlock);
        std::vector<InstrNode> out;
        specCopyOrigins_.clear();
        int cur = blk.targetBlock;
        unsigned i = 0;
        while (out.size() < want && cur >= 0) {
            const BasicBlock &tgt = cfg_.blocks()[std::size_t(cur)];
            if (i >= tgt.body.size()) {
                if (tgt.hasTerm())
                    break;
                cur = tgt.fallBlock;
                i = 0;
                continue;
            }
            if (!harmlessWrongPath(tgt.body[i].inst, fallLive))
                break;
            InstrNode copy = tgt.body[i];
            copy.id = cfg_.newNode();
            copy.slot = SlotKind::BrFromTarget;
            specCopyOrigins_.push_back(tgt.body[i].id);
            out.push_back(copy);
            ++i;
        }
        // Validate the combined arrangement on both paths.
        while (!out.empty()) {
            std::vector<InstrNode> combined = hoisted;
            combined.insert(combined.end(), out.begin(), out.end());
            if (slotLoadsOk(b, combined, config_.slots, true, true,
                            static_cast<unsigned>(out.size()))) {
                break;
            }
            out.pop_back();
        }
        return out;
    }

    /**
     * No-squash fill from the sequential path: a movable prefix of a
     * single-predecessor fall block whose destinations are dead at the
     * branch target.
     */
    std::vector<InstrNode>
    specFallCandidates(int b, unsigned want,
                       const std::vector<InstrNode> &hoisted)
    {
        BasicBlock &blk = this->blk(b);
        if (blk.fallBlock < 0 || blk.targetBlock < 0)
            return {};
        BasicBlock &fall = cfg_.blocks()[std::size_t(blk.fallBlock)];
        if (fall.preds != 1)
            return {};
        const std::uint32_t targetLive = liveAtEntry(blk.targetBlock);
        std::vector<InstrNode> out;
        for (unsigned i = 0; i < fall.body.size() && out.size() < want;
             ++i) {
            if (!harmlessWrongPath(fall.body[i].inst, targetLive) ||
                pinned_.count(fall.body[i].id)) {
                break;
            }
            InstrNode moved = fall.body[i];
            moved.slot = SlotKind::BrFromFall;
            out.push_back(moved);
        }
        while (!out.empty()) {
            bool ok = internalLoadsOk(out);
            if (ok && !hoisted.empty() && out.size() == 1 &&
                hoisted.back().inst.isGprLoad() &&
                usesOf(out.front().inst)
                    .hasGpr(hoisted.back().inst.destReg())) {
                ok = false; // hoisted load feeding the first moved inst
            }
            if (ok && hoisted.size() + out.size() == config_.slots) {
                // Last slot load vs both landings (slots run on both
                // paths): fall remainder and the branch target.
                const auto &last = out.back().inst;
                if (last.isGprLoad() && last.destReg() != 0) {
                    const unsigned rd = last.destReg();
                    const InstrNode *fl =
                        landing(blk.fallBlock,
                                static_cast<unsigned>(out.size()));
                    const InstrNode *tl = landing(blk.targetBlock, 0);
                    if ((fl && usesOf(fl->inst).hasGpr(rd)) ||
                        (tl && usesOf(tl->inst).hasGpr(rd))) {
                        ok = false;
                    }
                }
            }
            if (ok)
                break;
            out.pop_back();
        }
        return out;
    }

    /** Pairwise load rule inside a slot arrangement. */
    bool
    internalLoadsOk(const std::vector<InstrNode> &slots) const
    {
        for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
            const auto &a = slots[i].inst;
            if (a.isGprLoad() && a.destReg() != 0 &&
                usesOf(slots[i + 1].inst).hasGpr(a.destReg())) {
                return false;
            }
        }
        return true;
    }

    /**
     * The full load rule for a slot arrangement of block @p b: pairwise
     * inside the slots, and the last occupied slot against the first
     * instruction on each path the slots execute on. @p fill is the
     * number of occupied slots (no-ops pad to @p want, pushing real
     * instructions away from the landing).
     */
    bool
    slotLoadsOk(int b, const std::vector<InstrNode> &slots, unsigned want,
                bool exec_taken, bool exec_fall, unsigned target_skip)
    {
        if (!internalLoadsOk(slots))
            return false;
        if (slots.empty())
            return true;
        // Only a load in the *last* slot position is adjacent to the
        // landing instruction; trailing no-ops provide distance.
        if (slots.size() < want)
            return true;
        const auto &last = slots.back().inst;
        if (!last.isGprLoad() || last.destReg() == 0)
            return true;
        const unsigned rd = last.destReg();
        BasicBlock &blk = this->blk(b);

        if (exec_taken) {
            if (blk.targetBlock < 0)
                return false; // unknown target: be conservative
            const InstrNode *land = landing(blk.targetBlock, target_skip);
            if (land && usesOf(land->inst).hasGpr(rd))
                return false;
        }
        if (exec_fall) {
            const InstrNode *land = landing(blk.fallBlock, 0);
            if (land && usesOf(land->inst).hasGpr(rd))
                return false;
        }
        return true;
    }

    // -- Terminator scheduling -------------------------------------------

    void
    setSquash(InstrNode &t, SquashType s)
    {
        t.inst = isa::decode(
            insertBits(t.inst.raw, 26, 25, static_cast<word_t>(s)));
    }

    void
    applyHoist(int b, std::vector<InstrNode> hoisted)
    {
        if (hoisted.empty())
            return;
        BasicBlock &blk = this->blk(b);
        // Remove the picked instructions (recorded by hoistCandidates),
        // highest index first so earlier indices stay valid.
        for (auto it = hoistPicked_.rbegin(); it != hoistPicked_.rend();
             ++it) {
            blk.body.erase(blk.body.begin() + static_cast<long>(*it));
        }
        for (auto &n : hoisted) {
            n.slot = SlotKind::BrHoisted;
            blk.slots.push_back(n);
        }
    }

    /**
     * Pin the original instructions a retargeted branch skips: later
     * passes must never relocate them to a position the branch path
     * executes (e.g. into their own block's delay slots, which would
     * run them twice on the retargeted path).
     */
    void
    pinSkipRegion(const std::vector<NodeId> &origins, std::size_t count)
    {
        for (std::size_t i = 0; i < count && i < origins.size(); ++i)
            pinned_.insert(origins[i]);
    }

    void
    padNops(int b, unsigned want)
    {
        BasicBlock &blk = this->blk(b);
        while (blk.slots.size() < want) {
            blk.slots.push_back(makeNop(cfg_.newNode(), SlotKind::BrNop));
            ++stats_.slotsNop;
        }
    }

    void
    scheduleTerminator(int b)
    {
        BasicBlock &blk = this->blk(b);
        if (!blk.hasTerm())
            return;
        const Instruction &t = blk.term->inst;

        if (t.fmt == Format::Imm && t.immOp == ImmOp::Jpc)
            fatal("reorg: jpc in user text (handlers are hand-scheduled)");
        if (t.isTrap())
            return; // traps kill the following fetches; no slots needed

        const unsigned want = config_.slots;
        const bool conditional = t.isBranch() && t.cond != BranchCond::T;

        if (!conditional) {
            // Unconditional transfer: hoisted and target-copied slots
            // are both always useful; combine them.
            ++stats_.jumps;
            stats_.slotsTotal += want;
            const bool knownTarget = blk.targetBlock >= 0;
            auto hoisted = hoistCandidates(b, want, knownTarget, false);
            if (!knownTarget) {
                // jr/jalr: the landing is unknown; forbid a load in the
                // last slot by trimming.
                while (!hoisted.empty() && hoisted.size() == want &&
                       hoisted.back().inst.isGprLoad()) {
                    hoisted.pop_back();
                }
            }
            applyHoist(b, hoisted);
            stats_.slotsHoisted += hoisted.size();
            if (knownTarget && blk.slots.size() < want) {
                auto copies = targetCandidates(
                    b, want - static_cast<unsigned>(blk.slots.size()));
                // Re-validate the combined arrangement.
                std::vector<InstrNode> combined = blk.slots;
                combined.insert(combined.end(), copies.begin(),
                                copies.end());
                while (!copies.empty() &&
                       !slotLoadsOk(b, combined, want, true, false,
                                    static_cast<unsigned>(copies.size()))) {
                    copies.pop_back();
                    combined.pop_back();
                }
                if (!copies.empty()) {
                    blk.targetSkip = static_cast<unsigned>(copies.size());
                    blk.landingId =
                        landing(blk.targetBlock, blk.targetSkip)
                            ? landing(blk.targetBlock, blk.targetSkip)->id
                            : invalidNode;
                    if (blk.landingId != invalidNode)
                        pinned_.insert(blk.landingId);
                    pinSkipRegion(copyOrigins_, copies.size());
                    for (auto &c : copies)
                        blk.slots.push_back(c);
                    stats_.slotsFromTarget += copies.size();
                }
            }
            padNops(b, want);
            return;
        }

        // Conditional branch: choose a strategy per the scheme.
        ++stats_.branches;
        stats_.slotsTotal += want;
        const double p = predictTaken(b);

        // The no-squash plan: hoisted instructions first (always
        // useful), then — the paper's second rule — instructions from
        // one path that are harmless if the branch goes the other way.
        std::vector<InstrNode> hoisted;
        std::vector<InstrNode> specT, specF;
        if (config_.scheme != BranchScheme::AlwaysSquash) {
            hoisted = hoistCandidates(b, want, true, true);
            const unsigned rem =
                want - static_cast<unsigned>(hoisted.size());
            if (rem > 0) {
                specT = specTargetCandidates(b, rem, hoisted);
                specF = specFallCandidates(b, rem, hoisted);
            }
        }
        const double specScore =
            std::max(static_cast<double>(specT.size()) * p,
                     static_cast<double>(specF.size()) * (1.0 - p));
        const bool specUseTarget =
            static_cast<double>(specT.size()) * p >=
            static_cast<double>(specF.size()) * (1.0 - p);

        // The squashing plans.
        std::vector<InstrNode> fromTarget;
        std::vector<InstrNode> fromFall;
        if (config_.scheme != BranchScheme::NoSquash) {
            fromTarget = targetCandidates(b, want);
            if (!config_.paperFaithful)
                fromFall = fallCandidates(b, want);
        }

        const double scoreNoSquash =
            static_cast<double>(hoisted.size()) + specScore;
        const double scoreTarget =
            static_cast<double>(fromTarget.size()) * p;
        const double scoreFall =
            static_cast<double>(fromFall.size()) * (1.0 - p);

        enum class Choice { NoSquash, Target, Fall } choice =
            Choice::NoSquash;
        if (config_.scheme == BranchScheme::AlwaysSquash) {
            // Must squash: pick the predicted direction's fill.
            if (!config_.paperFaithful && scoreFall > scoreTarget)
                choice = Choice::Fall;
            else
                choice = Choice::Target;
        } else if (config_.scheme == BranchScheme::NoSquash) {
            choice = Choice::NoSquash;
        } else {
            choice = Choice::NoSquash;
            double best = scoreNoSquash;
            if (scoreTarget > best) {
                best = scoreTarget;
                choice = Choice::Target;
            }
            if (scoreFall > best)
                choice = Choice::Fall;
        }

        switch (choice) {
          case Choice::NoSquash: {
            ++stats_.chosenNoSquash;
            setSquash(blk.term.value(), SquashType::NoSquash);
            applyHoist(b, hoisted);
            stats_.slotsHoisted += hoisted.size();
            const auto &spec = specUseTarget ? specT : specF;
            if (!spec.empty()) {
                if (specUseTarget) {
                    // Copies of the target head: retarget past them.
                    blk.targetSkip = static_cast<unsigned>(spec.size());
                    const auto *land =
                        landing(blk.targetBlock, blk.targetSkip);
                    blk.landingId = land ? land->id : invalidNode;
                    if (blk.landingId != invalidNode)
                        pinned_.insert(blk.landingId);
                    pinSkipRegion(specCopyOrigins_, spec.size());
                    stats_.slotsFromTarget += spec.size();
                } else {
                    // Moved from the (sole-predecessor) fall block.
                    BasicBlock &fall = this->blk(blk.fallBlock);
                    fall.body.erase(fall.body.begin(),
                                    fall.body.begin() +
                                        static_cast<long>(spec.size()));
                    stats_.slotsFromFall += spec.size();
                }
                for (const auto &n : spec)
                    blk.slots.push_back(n);
            }
            break;
          }
          case Choice::Target:
            ++stats_.chosenSquashNotTaken;
            setSquash(blk.term.value(), SquashType::SquashNotTaken);
            if (!fromTarget.empty()) {
                blk.targetSkip = static_cast<unsigned>(fromTarget.size());
                const auto *land =
                    landing(blk.targetBlock, blk.targetSkip);
                blk.landingId = land ? land->id : invalidNode;
                if (blk.landingId != invalidNode)
                    pinned_.insert(blk.landingId);
                pinSkipRegion(copyOrigins_, fromTarget.size());
                for (auto &c : fromTarget)
                    blk.slots.push_back(c);
                stats_.slotsFromTarget += fromTarget.size();
            }
            break;
          case Choice::Fall: {
            ++stats_.chosenSquashTaken;
            setSquash(blk.term.value(), SquashType::SquashTaken);
            BasicBlock &fall = this->blk(blk.fallBlock);
            fall.body.erase(fall.body.begin(),
                            fall.body.begin() +
                                static_cast<long>(fromFall.size()));
            for (auto &m : fromFall)
                blk.slots.push_back(m);
            stats_.slotsFromFall += fromFall.size();
            break;
          }
        }
        padNops(b, want);
    }

    // -- Load-delay scheduling -------------------------------------------

    void
    loadPass(int b)
    {
        // Moves (pull/push) fix one hazard but can in principle expose
        // another; the iteration bound forces no-op fixes (which are
        // strictly monotone) if rescheduling ever churns.
        std::size_t moveBudget = 8 * (this->blk(b).body.size() + 1);
        bool changed = true;
        while (changed) {
            changed = false;
            BasicBlock &blk = this->blk(b);
            for (std::size_t i = 0; i < blk.body.size(); ++i) {
                const Instruction &ld = blk.body[i].inst;
                if (!ld.isGprLoad() || ld.destReg() == 0)
                    continue;
                const unsigned rd = ld.destReg();

                const Instruction *reader = nullptr;
                bool reader_in_body = false;
                if (i + 1 < blk.body.size()) {
                    reader = &blk.body[i + 1].inst;
                    reader_in_body = true;
                } else if (blk.hasTerm()) {
                    reader = &blk.term->inst;
                } else if (const auto *land = landing(blk.fallBlock, 0)) {
                    reader = &land->inst;
                }
                if (!reader || !usesOf(*reader).hasGpr(rd))
                    continue;

                ++stats_.loadHazards;
                const bool mayMove = moveBudget > 0;
                if (mayMove)
                    --moveBudget;
                if (mayMove && reader_in_body && tryPull(b, i)) {
                    ++stats_.loadReordered;
                } else if (mayMove && tryPush(b, i)) {
                    ++stats_.loadReordered;
                } else {
                    blk.body.insert(
                        blk.body.begin() + static_cast<long>(i) + 1,
                        makeNop(cfg_.newNode(), SlotKind::LoadNop));
                    ++stats_.loadNops;
                }
                changed = true;
                break; // indices moved; rescan the block
            }
        }
    }

    // -- DAG backends (List / Optimal) -----------------------------------

    /**
     * Rebuild block @p b's body in the order the configured DAG backend
     * chooses. Pinned landing nodes become fences, so branch entries
     * into the middle of the block keep their validated adjacencies.
     */
    void
    dagReorder(int b)
    {
        BasicBlock &blk = this->blk(b);
        if (blk.body.empty())
            return;
        ++stats_.dagBlocks;
        if (blk.body.size() < 2)
            return;

        std::vector<char> pins(blk.body.size(), 0);
        for (std::size_t i = 0; i < blk.body.size(); ++i)
            pins[i] = pinned_.count(blk.body[i].id) ? 1 : 0;
        Dag dag = Dag::build(blk.body, pins);

        // The instruction executed right after the body: terminator if
        // present, else the fall-through landing. A load placed last
        // that feeds it will cost a no-op.
        std::uint32_t exitUses = 0;
        if (blk.hasTerm())
            exitUses = gprMask(usesOf(blk.term->inst));
        else if (const auto *land = landing(blk.fallBlock, 0))
            exitUses = gprMask(usesOf(land->inst));
        dag.setExitUses(exitUses);

        std::vector<unsigned> order;
        if (config_.scheduler == SchedulerKind::Optimal) {
            if (dag.size() <= config_.optimalMaxNodes) {
                ++stats_.dagOptimalExact;
                order = scheduleOptimal(dag);
            } else {
                ++stats_.dagOptimalFallback;
                order = scheduleList(dag, SchedPriority::CriticalPath);
            }
        } else {
            order = scheduleList(dag, config_.priority);
        }

        std::vector<InstrNode> newBody;
        newBody.reserve(blk.body.size());
        for (const unsigned i : order)
            newBody.push_back(blk.body[i]);
        blk.body = std::move(newBody);
    }

    /**
     * Insert LoadNops for every hazard the chosen orders left: interior
     * load-use adjacencies and the body-to-terminator edge. Exit seams
     * into other blocks are fixupSeams()'s job. Insertion is monotone:
     * a no-op never creates a hazard.
     */
    void
    fixupLoads(int b)
    {
        BasicBlock &blk = this->blk(b);
        for (std::size_t i = 0; i < blk.body.size(); ++i) {
            const Instruction &ld = blk.body[i].inst;
            if (!ld.isGprLoad() || ld.destReg() == 0)
                continue;
            const unsigned rd = ld.destReg();
            const Instruction *reader = nullptr;
            if (i + 1 < blk.body.size())
                reader = &blk.body[i + 1].inst;
            else if (blk.hasTerm())
                reader = &blk.term->inst;
            else if (const auto *land = landing(blk.fallBlock, 0))
                reader = &land->inst;
            if (!reader || !usesOf(*reader).hasGpr(rd))
                continue;
            ++stats_.loadHazards;
            ++stats_.loadNops;
            blk.body.insert(blk.body.begin() + static_cast<long>(i) + 1,
                            makeNop(cfg_.newNode(), SlotKind::LoadNop));
            ++i; // the inserted no-op needs no rescan
        }
    }

    /**
     * Repair cross-block load-delay seams, the exact edges
     * verifySchedule() checks: when a block's last *executed*
     * instruction (last slot, else terminator, else last body
     * instruction) is a GPR load, the first instruction of every path
     * out of the block must not read its destination. The per-block
     * passes cannot see these — the reader lives in another block, and
     * the slot fillers validated against heads that later passes (or
     * other blocks' fall fills) may have changed since.
     *
     * Repairs insert a LoadNop *on the offending path*:
     *
     *  - fall path: at the head of the fall block (executed by every
     *    entry into it — a no-op is always harmless);
     *  - taken path: immediately before the landing node in whatever
     *    block it lives in, retargeting this branch's landingId at the
     *    no-op so the taken entry runs it (other predecessors of the
     *    old landing keep their entry point and simply skip it).
     */
    void
    fixupSeams(int b)
    {
        BasicBlock &blk = this->blk(b);
        const Instruction *lastSeq = nullptr;
        if (!blk.slots.empty())
            lastSeq = &blk.slots.back().inst;
        else if (blk.hasTerm())
            lastSeq = &blk.term->inst;
        else if (!blk.body.empty())
            lastSeq = &blk.body.back().inst;
        if (!lastSeq || !lastSeq->isGprLoad() || lastSeq->destReg() == 0)
            return;
        const unsigned rd = lastSeq->destReg();

        auto fixFallSeam = [&] {
            const auto *land = landing(blk.fallBlock, 0);
            if (!land || !usesOf(land->inst).hasGpr(rd))
                return;
            ++stats_.loadHazards;
            ++stats_.loadNops;
            BasicBlock &fall = this->blk(blk.fallBlock);
            fall.body.insert(fall.body.begin(),
                             makeNop(cfg_.newNode(), SlotKind::LoadNop));
        };

        if (!blk.hasTerm()) {
            if (blk.fallBlock >= 0)
                fixFallSeam();
            return;
        }

        const Instruction &t = blk.term->inst;
        if (t.squash != SquashType::SquashTaken && blk.targetBlock >= 0)
            fixTakenSeam(b, rd);
        if (t.squash != SquashType::SquashNotTaken && t.isBranch() &&
            blk.fallBlock >= 0) {
            fixFallSeam();
        }
    }

    /** The taken-path half of fixupSeams(); @p rd is the load's dest. */
    void
    fixTakenSeam(int b, unsigned rd)
    {
        BasicBlock &blk = this->blk(b);
        // Resolve the taken-path landing the way the verifier does.
        int landBlock = -1;
        std::size_t landIdx = 0;
        bool landIsTerm = false;
        const Instruction *landInst = nullptr;
        if (blk.landingId != invalidNode) {
            for (std::size_t x = 0;
                 x < cfg_.blocks().size() && !landInst; ++x) {
                BasicBlock &cand = cfg_.blocks()[x];
                for (std::size_t k = 0; k < cand.body.size(); ++k) {
                    if (cand.body[k].id == blk.landingId) {
                        landBlock = static_cast<int>(x);
                        landIdx = k;
                        landInst = &cand.body[k].inst;
                        break;
                    }
                }
                if (!landInst && cand.hasTerm() &&
                    cand.term->id == blk.landingId) {
                    landBlock = static_cast<int>(x);
                    landIdx = cand.body.size();
                    landIsTerm = true;
                    landInst = &cand.term->inst;
                }
            }
        } else if (const auto *land = landing(blk.targetBlock, 0)) {
            // The branch enters at the target block's head; a no-op
            // prepended there is on every entry path and needs no
            // retargeting.
            if (usesOf(land->inst).hasGpr(rd)) {
                ++stats_.loadHazards;
                ++stats_.loadNops;
                BasicBlock &tgt = this->blk(blk.targetBlock);
                tgt.body.insert(
                    tgt.body.begin(),
                    makeNop(cfg_.newNode(), SlotKind::LoadNop));
            }
            return;
        }
        if (!landInst || !usesOf(*landInst).hasGpr(rd))
            return;
        ++stats_.loadHazards;
        ++stats_.loadNops;
        (void)landIsTerm;
        BasicBlock &home = this->blk(landBlock);
        const InstrNode nop = makeNop(cfg_.newNode(), SlotKind::LoadNop);
        home.body.insert(home.body.begin() + static_cast<long>(landIdx),
                         nop);
        blk.landingId = nop.id;
    }

    /**
     * Try to sink an *earlier* body instruction of block @p b into the
     * shadow of the load at body index @p i (the complement of
     * tryPull, for loads at the end of their dependence chains).
     */
    bool
    tryPush(int b, std::size_t i)
    {
        BasicBlock &blk = this->blk(b);
        const unsigned rd = blk.body[i].inst.destReg();
        // What follows the load (the hazardous reader).
        const Instruction *after = nullptr;
        if (i + 1 < blk.body.size())
            after = &blk.body[i + 1].inst;
        else if (blk.hasTerm())
            after = &blk.term->inst;

        for (std::size_t j = i; j-- > 0;) {
            const InstrNode &cand = blk.body[j];
            if (!movable(cand.inst) || pinned_.count(cand.id))
                continue;
            if (usesOf(cand.inst).hasGpr(rd))
                continue; // would sit at distance 1 behind the load
            // A sinking load must not feed the old reader at distance 1.
            if (cand.inst.isGprLoad() && cand.inst.destReg() != 0 &&
                after && usesOf(*after).hasGpr(cand.inst.destReg())) {
                continue;
            }
            // The move must not cross a landing point.
            bool crosses_landing = false;
            for (std::size_t p = j + 1; p <= i && !crosses_landing; ++p) {
                if (pinned_.count(blk.body[p].id))
                    crosses_landing = true;
            }
            if (crosses_landing)
                continue;
            // Independent of everything it crosses, load included.
            bool independent_span = true;
            for (std::size_t k = j + 1; k <= i && independent_span; ++k) {
                if (!independent(cand.inst, blk.body[k].inst))
                    independent_span = false;
            }
            if (!independent_span)
                continue;
            // Vacating position j must not expose a hazard at its seam.
            if (j > 0) {
                const Instruction &before = blk.body[j - 1].inst;
                const Instruction &newNext = blk.body[j + 1].inst;
                if (before.isGprLoad() && before.destReg() != 0 &&
                    usesOf(newNext).hasGpr(before.destReg())) {
                    continue;
                }
            }
            InstrNode moved = cand;
            blk.body.erase(blk.body.begin() + static_cast<long>(j));
            // After the erase, the load sits at index i - 1.
            blk.body.insert(blk.body.begin() + static_cast<long>(i),
                            moved);
            return true;
        }
        return false;
    }

    /**
     * Try to move a later body instruction of block @p b into the shadow
     * of the load at body index @p i.
     */
    bool
    tryPull(int b, std::size_t i)
    {
        BasicBlock &blk = this->blk(b);
        const unsigned rd = blk.body[i].inst.destReg();
        for (std::size_t j = i + 2; j < blk.body.size(); ++j) {
            const InstrNode &cand = blk.body[j];
            if (!movable(cand.inst) || pinned_.count(cand.id))
                continue;
            // The move must not cross a landing point: a retargeted
            // branch enters this block mid-body, and an instruction
            // moved from after that entry to before it would be skipped
            // on the branch path.
            bool crosses_landing = false;
            for (std::size_t p = i + 1; p <= j && !crosses_landing; ++p) {
                if (pinned_.count(blk.body[p].id))
                    crosses_landing = true;
            }
            if (crosses_landing)
                continue;
            if (usesOf(cand.inst).hasGpr(rd))
                continue; // same hazard, one slot later
            // The candidate must not itself be a load feeding the old
            // reader at distance one.
            if (cand.inst.isGprLoad() && cand.inst.destReg() != 0 &&
                usesOf(blk.body[i + 1].inst)
                    .hasGpr(cand.inst.destReg())) {
                continue;
            }
            bool independent_span = true;
            for (std::size_t k = i + 1; k < j && independent_span; ++k) {
                if (!independent(cand.inst, blk.body[k].inst))
                    independent_span = false;
            }
            if (!independent_span)
                continue;
            // Moving cand out of position j must not create a hazard at
            // the seam it leaves behind.
            const Instruction &before =
                blk.body[j - 1].inst; // j-1 >= i+1
            const Instruction *after = nullptr;
            if (j + 1 < blk.body.size())
                after = &blk.body[j + 1].inst;
            else if (blk.hasTerm())
                after = &blk.term->inst;
            if (before.isGprLoad() && before.destReg() != 0 && after &&
                usesOf(*after).hasGpr(before.destReg())) {
                continue;
            }
            InstrNode moved = cand;
            blk.body.erase(blk.body.begin() + static_cast<long>(j));
            blk.body.insert(blk.body.begin() + static_cast<long>(i) + 1,
                            moved);
            return true;
        }
        return false;
    }

    Cfg &cfg_;
    const ReorgConfig &config_;
    ReorgStats &stats_;
    std::unordered_set<NodeId> pinned_;
    /** Body indices chosen by the last hoistCandidates() call. */
    std::vector<std::size_t> hoistPicked_;
    /** Per-block live-in GPR masks (original CFG). */
    std::vector<std::uint32_t> liveIn_;
    /** Original node ids of the last targetCandidates() collection. */
    std::vector<NodeId> copyOrigins_;
    /** Same, for the last specTargetCandidates() collection. */
    std::vector<NodeId> specCopyOrigins_;
};

} // namespace

// ---------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------

unsigned
verifySchedule(const Cfg &cfg, unsigned slots)
{
    unsigned violations = 0;

    auto landing = [&cfg](int block, unsigned skip) -> const InstrNode * {
        while (block >= 0) {
            const BasicBlock &b = cfg.blocks()[std::size_t(block)];
            if (skip < b.body.size())
                return &b.body[skip];
            skip -= static_cast<unsigned>(b.body.size());
            if (b.hasTerm())
                return &b.term.value();
            block = b.fallBlock;
        }
        return nullptr;
    };

    auto hazard = [&violations](const Instruction &a,
                                const Instruction &b) {
        if (a.isGprLoad() && a.destReg() != 0 &&
            usesOf(b).hasGpr(a.destReg())) {
            ++violations;
        }
    };

    for (std::size_t bi = 0; bi < cfg.blocks().size(); ++bi) {
        const BasicBlock &b = cfg.blocks()[bi];

        // Sequential adjacencies inside the block.
        std::vector<const Instruction *> seq;
        for (const auto &n : b.body)
            seq.push_back(&n.inst);
        if (b.hasTerm())
            seq.push_back(&b.term->inst);
        for (const auto &n : b.slots)
            seq.push_back(&n.inst);
        for (std::size_t i = 0; i + 1 < seq.size(); ++i)
            hazard(*seq[i], *seq[i + 1]);

        // Slot-region shape.
        if (b.hasTerm() && !b.term->inst.isTrap() &&
            b.slots.size() != slots) {
            ++violations;
        }

        // Edges out of the block.
        if (seq.empty())
            continue;
        const Instruction &lastSeq = *seq.back();
        if (b.hasTerm()) {
            const Instruction &t = b.term->inst;
            const bool execTaken =
                t.squash != SquashType::SquashTaken; // run when taken
            const bool execFall =
                t.squash != SquashType::SquashNotTaken;
            if (execTaken && b.targetBlock >= 0) {
                const Instruction *landInst = nullptr;
                if (b.landingId != invalidNode) {
                    for (const auto &bb : cfg.blocks()) {
                        for (const auto &n : bb.body)
                            if (n.id == b.landingId)
                                landInst = &n.inst;
                        if (bb.hasTerm() && bb.term->id == b.landingId)
                            landInst = &bb.term->inst;
                    }
                } else if (const auto *land = landing(b.targetBlock, 0)) {
                    landInst = &land->inst;
                }
                if (landInst)
                    hazard(lastSeq, *landInst);
            }
            if (execFall && b.fallBlock >= 0 && t.isBranch()) {
                if (const auto *land = landing(b.fallBlock, 0))
                    hazard(lastSeq, land->inst);
            }
        } else if (b.fallBlock >= 0) {
            if (const auto *land = landing(b.fallBlock, 0))
                hazard(lastSeq, land->inst);
        }
    }
    return violations;
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

assembler::Program
reorganize(const assembler::Program &prog, const ReorgConfig &config,
           ReorgStats *stats)
{
    if (config.slots < 1 || config.slots > 2)
        fatal("reorganize: slots must be 1 or 2");

    ReorgStats local;
    ReorgStats &st = stats ? *stats : local;

    assembler::Program out;
    out.symbols = prog.symbols;
    out.textRefs = prog.textRefs;
    out.entrySpace = prog.entrySpace;
    std::unordered_map<addr_t, addr_t> globalMap;

    for (const auto &sec : prog.sections) {
        if (!sec.isText || sec.space == AddressSpace::System) {
            out.sections.push_back(sec);
            continue;
        }

        std::vector<addr_t> symbolAddrs;
        for (const auto &[name, addr] : prog.symbols) {
            (void)name;
            if (addr >= sec.base && addr < sec.end())
                symbolAddrs.push_back(addr);
        }

        Cfg cfg = Cfg::build(sec, symbolAddrs);
        Scheduler sched(cfg, config, st);
        sched.run();

        // Postcondition: the schedule must be free of load-delay
        // violations on every path and have well-formed slot regions.
        if (const unsigned v = verifySchedule(cfg, config.slots))
            fatal(strformat("reorganize: schedule verification found %u "
                            "violation(s) in section '%s'",
                            v, sec.name.c_str()));

        std::vector<std::pair<addr_t, addr_t>> addrMap;
        assembler::Section newSec = cfg.emit(sec, sec.base, &addrMap);

        std::unordered_map<addr_t, addr_t> map(addrMap.begin(),
                                               addrMap.end());
        globalMap.insert(addrMap.begin(), addrMap.end());
        for (auto &[name, addr] : out.symbols) {
            (void)name;
            if (addr >= sec.base && addr < sec.end()) {
                auto it = map.find(addr);
                if (it != map.end())
                    addr = it->second;
                else if (addr == sec.end())
                    addr = newSec.end();
                else
                    fatal("reorganize: symbol lost during relayout");
            } else if (addr == sec.end()) {
                addr = newSec.end();
            }
        }
        out.sections.push_back(std::move(newSec));
    }

    // Remap code pointers held in data words.
    for (const auto &ref : out.textRefs) {
        auto &sec = out.sections.at(ref.section);
        word_t &w = sec.words.at(ref.offset);
        auto it = globalMap.find(w);
        if (it != globalMap.end())
            w = it->second;
    }

    // Remap the entry point.
    out.entry = prog.entry;
    for (const auto &[name, addr] : prog.symbols) {
        if (addr == prog.entry) {
            out.entry = out.symbols.at(name);
            break;
        }
    }
    if (out.entry == prog.entry) {
        // No symbol at the entry: if it is a text base, keep the base.
        for (std::size_t i = 0; i < prog.sections.size(); ++i) {
            if (prog.sections[i].isText &&
                prog.entry == prog.sections[i].base) {
                out.entry = out.sections[i].base;
                break;
            }
        }
    }
    return out;
}

} // namespace mipsx::reorg
