/**
 * @file
 * Control-flow graph over an assembled text section.
 *
 * The reorganizer consumes the assembler's *sequential-semantics* output
 * (no delay slots), splits it into basic blocks, fills branch and load
 * delay slots (scheduler.hh), and re-emits a pipeline-ready section with
 * relocated branch displacements and per-instruction slot annotations.
 *
 * Branch targets are tracked by stable node identity, not address, so
 * passes can insert and move instructions freely; addresses are assigned
 * only at emission.
 */

#ifndef MIPSX_REORG_CFG_HH
#define MIPSX_REORG_CFG_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "assembler/program.hh"
#include "isa/instruction.hh"

namespace mipsx::reorg
{

/** Stable identity of one instruction node. */
using NodeId = std::uint32_t;
inline constexpr NodeId invalidNode = 0xffffffffu;

/** One instruction in the CFG. */
struct InstrNode
{
    NodeId id = invalidNode;
    isa::Instruction inst;
    addr_t origAddr = 0; ///< address in the input section
    assembler::SlotKind slot = assembler::SlotKind::None;
};

/** A basic block: straight-line body plus an optional terminator. */
struct BasicBlock
{
    std::vector<InstrNode> body;     ///< non-control instructions
    std::optional<InstrNode> term;   ///< branch / jump / trap
    std::vector<InstrNode> slots;    ///< delay slots (scheduler output)

    int targetBlock = -1; ///< branch/jmp/jal target block, -1 if unknown
    /**
     * How many leading instructions of the target block this block's
     * control transfer skips (slot filling copies them into the slots
     * and retargets past them).
     */
    unsigned targetSkip = 0;
    /**
     * Identity of the instruction the control transfer lands on when
     * the scheduler retargeted it (invalidNode: land at the target
     * block's head). Identity survives later no-op insertions.
     */
    NodeId landingId = invalidNode;
    int fallBlock = -1; ///< sequential successor block, -1 if none

    /** Predecessor count; ~0u when unknowable (entry, return targets). */
    unsigned preds = 0;

    bool hasTerm() const { return term.has_value(); }
};

/** The control-flow graph of one text section. */
class Cfg
{
  public:
    /**
     * Build the CFG of @p text. @p symbol_addrs lists addresses that
     * carry labels: they start blocks and are treated as externally
     * reachable (unknown predecessors), which keeps the scheduler from
     * moving instructions out of them.
     */
    static Cfg build(const assembler::Section &text,
                     const std::vector<addr_t> &symbol_addrs = {});

    std::vector<BasicBlock> &blocks() { return blocks_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Allocate a fresh node id (for inserted no-ops). */
    NodeId newNode() { return nextId_++; }

    /** Total instruction count across all blocks. */
    std::size_t size() const;

    /**
     * Lay the blocks back out at @p base: assign addresses, resolve
     * displacements against the final layout, and emit the section with
     * slot annotations. @p addr_map receives origAddr -> newAddr for
     * every node (used to remap symbols).
     */
    assembler::Section emit(const assembler::Section &proto, addr_t base,
                            std::vector<std::pair<addr_t, addr_t>>
                                *addr_map) const;

    /**
     * The node a control transfer to (block, skip) lands on: walks past
     * skipped body instructions, falling through empty blocks.
     */
    NodeId landingNode(int block, unsigned skip) const;

  private:
    std::vector<BasicBlock> blocks_;
    NodeId nextId_ = 0;
};

} // namespace mipsx::reorg

#endif // MIPSX_REORG_CFG_HH
