#include "reorg/dag.hh"

#include <algorithm>
#include <array>
#include <functional>
#include <sstream>

#include "common/sim_error.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

namespace mipsx::reorg
{

using isa::ComputeOp;
using isa::Format;
using isa::Instruction;
using isa::SpecialReg;

// ---------------------------------------------------------------------
// Dependence analysis
// ---------------------------------------------------------------------

ResSet
defsOf(const Instruction &in)
{
    ResSet s;
    s.addGpr(in.destReg());
    if (in.writesMd())
        s.addMd();
    if (in.isCoproc())
        s.addCop();
    return s;
}

ResSet
usesOf(const Instruction &in)
{
    ResSet s;
    const auto src = in.srcRegs();
    for (unsigned i = 0; i < src.count; ++i)
        s.addGpr(src.reg[i]);
    if (in.readsMd())
        s.addMd();
    if (in.isCoproc())
        s.addCop();
    return s;
}

bool
isLoadOp(const Instruction &in)
{
    return in.accessesMemory() && !in.isStore();
}

bool
isStoreOp(const Instruction &in)
{
    return in.accessesMemory() && in.isStore();
}

bool
memConflict(const Instruction &a, const Instruction &b)
{
    const bool a_mem = a.accessesMemory();
    const bool b_mem = b.accessesMemory();
    if (!a_mem || !b_mem)
        return false;
    return isStoreOp(a) || isStoreOp(b); // only load/load commutes
}

bool
movable(const Instruction &in)
{
    if (in.isControl() || !in.valid)
        return false;
    if (in.fmt == Format::Compute &&
        (in.compOp == ComputeOp::Movfrs ||
         in.compOp == ComputeOp::Movtos)) {
        // MD moves are ordinary dataflow; PSW/chain moves are control
        // state and stay put.
        return in.aux == static_cast<std::uint16_t>(SpecialReg::Md);
    }
    return true;
}

bool
independent(const Instruction &x, const Instruction &y)
{
    const ResSet dx = defsOf(x), ux = usesOf(x);
    const ResSet dy = defsOf(y), uy = usesOf(y);
    if (dx.intersects(uy) || ux.intersects(dy) || dx.intersects(dy))
        return false;
    return !memConflict(x, y);
}

InstrNode
makeNop(NodeId id, assembler::SlotKind kind)
{
    InstrNode n;
    n.id = id;
    n.inst = isa::decode(isa::encodeNop());
    n.origAddr = ~addr_t{0};
    n.slot = kind;
    return n;
}

// ---------------------------------------------------------------------
// Names
// ---------------------------------------------------------------------

const char *
schedulerKindName(SchedulerKind k)
{
    switch (k) {
      case SchedulerKind::Heuristic: return "heuristic";
      case SchedulerKind::List: return "list";
      case SchedulerKind::Optimal: return "optimal";
    }
    return "?";
}

const char *
schedPriorityName(SchedPriority p)
{
    switch (p) {
      case SchedPriority::CriticalPath: return "critical-path";
      case SchedPriority::Slack: return "slack";
      case SchedPriority::RegPressure: return "register-pressure";
    }
    return "?";
}

namespace
{

const char *
depKindName(DepKind k)
{
    switch (k) {
      case DepKind::Raw: return "raw";
      case DepKind::Waw: return "waw";
      case DepKind::War: return "war";
      case DepKind::Mem: return "mem";
      case DepKind::Order: return "order";
    }
    return "?";
}

} // namespace

// ---------------------------------------------------------------------
// Dag
// ---------------------------------------------------------------------

Dag
Dag::build(const std::vector<InstrNode> &body,
           const std::vector<char> &pinned)
{
    Dag dag;
    const unsigned n = static_cast<unsigned>(body.size());
    dag.nodes_.reserve(n);
    for (const auto &node : body)
        dag.nodes_.push_back(&node);
    dag.pinned_.assign(n, 0);
    for (unsigned i = 0; i < n && i < pinned.size(); ++i)
        dag.pinned_[i] = pinned[i];
    dag.preds_.assign(n, {});
    dag.succs_.assign(n, {});

    // A fence keeps its position relative to *everything*: pinned
    // landing nodes (a retargeted branch enters there) and instructions
    // the heuristic would also never relocate (PSW/chain moves).
    auto fence = [&](unsigned i) {
        return dag.pinned_[i] || !movable(dag.inst(i));
    };

    for (unsigned i = 0; i < n; ++i) {
        const Instruction &a = dag.inst(i);
        const ResSet da = defsOf(a), ua = usesOf(a);
        for (unsigned j = i + 1; j < n; ++j) {
            const Instruction &b = dag.inst(j);
            DepKind kind;
            if (da.intersects(usesOf(b)))
                kind = DepKind::Raw;
            else if (da.intersects(defsOf(b)))
                kind = DepKind::Waw;
            else if (ua.intersects(defsOf(b)))
                kind = DepKind::War;
            else if (memConflict(a, b))
                kind = DepKind::Mem;
            else if (fence(i) || fence(j))
                kind = DepKind::Order;
            else
                continue;
            dag.edges_.push_back({i, j, kind});
            dag.succs_[i].push_back(j);
            dag.preds_[j].push_back(i);
        }
    }
    return dag;
}

unsigned
Dag::latency(unsigned from, unsigned to) const
{
    return loadHazard(from, to) ? 2 : 1;
}

bool
Dag::loadHazard(unsigned a, unsigned b) const
{
    const Instruction &la = inst(a);
    return la.isGprLoad() && la.destReg() != 0 &&
        usesOf(inst(b)).hasGpr(la.destReg());
}

bool
Dag::exitHazard(unsigned i) const
{
    const Instruction &in = inst(i);
    return in.isGprLoad() && in.destReg() != 0 &&
        (exitUses_ & (1u << in.destReg())) != 0;
}

std::vector<unsigned>
Dag::criticalPaths() const
{
    const unsigned n = size();
    std::vector<unsigned> cp(n, 0);
    for (unsigned i = n; i-- > 0;) {
        cp[i] = 1 + (exitHazard(i) ? 1u : 0u);
        for (const unsigned j : succs_[i])
            cp[i] = std::max(cp[i], latency(i, j) + cp[j]);
    }
    return cp;
}

bool
Dag::validOrder(const std::vector<unsigned> &order) const
{
    const unsigned n = size();
    if (order.size() != n)
        return false;
    std::vector<unsigned> pos(n, ~0u);
    for (unsigned k = 0; k < n; ++k) {
        if (order[k] >= n || pos[order[k]] != ~0u)
            return false;
        pos[order[k]] = k;
    }
    for (const auto &e : edges_) {
        if (pos[e.from] >= pos[e.to])
            return false;
    }
    return true;
}

unsigned
Dag::scheduleCost(const std::vector<unsigned> &order) const
{
    if (!validOrder(order))
        fatal("dag: scheduleCost on an invalid order");
    unsigned cost = size();
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
        if (loadHazard(order[k], order[k + 1]))
            ++cost;
    }
    if (!order.empty() && exitHazard(order.back()))
        ++cost;
    return cost;
}

unsigned
Dag::originalCost() const
{
    std::vector<unsigned> identity(size());
    for (unsigned i = 0; i < size(); ++i)
        identity[i] = i;
    return scheduleCost(identity);
}

std::string
Dag::dot(const std::string &title) const
{
    std::ostringstream os;
    os << "digraph \"" << title << "\" {\n";
    os << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
    for (unsigned i = 0; i < size(); ++i) {
        os << strformat("  n%u [label=\"%u: %s%s\"];\n", i, i,
                        isa::disassemble(inst(i).raw, node(i).origAddr,
                                         true)
                            .c_str(),
                        pinned_[i] ? " [pinned]" : "");
    }
    for (const auto &e : edges_) {
        os << strformat("  n%u -> n%u [label=\"%s\"%s];\n", e.from, e.to,
                        depKindName(e.kind),
                        e.kind == DepKind::Order ? ", style=dashed" : "");
    }
    os << strformat("  label=\"%s (exit uses %08x)\";\n", title.c_str(),
                    exitUses_);
    os << "}\n";
    return os.str();
}

// ---------------------------------------------------------------------
// List scheduling
// ---------------------------------------------------------------------

std::vector<unsigned>
scheduleList(const Dag &dag, SchedPriority priority)
{
    const unsigned n = dag.size();
    std::vector<unsigned> order;
    if (n == 0)
        return order;
    order.reserve(n);

    const std::vector<unsigned> cp = dag.criticalPaths();

    // ASAP/ALAP for the slack priority. ASAP in latency-weighted start
    // cycles; ALAP = T - cp (cp already includes the node's own cycle).
    std::vector<unsigned> asap(n, 0);
    for (unsigned i = 0; i < n; ++i) {
        for (const unsigned p : dag.preds(i))
            asap[i] = std::max(asap[i], asap[p] + dag.latency(p, i));
    }
    unsigned total = 0;
    for (unsigned i = 0; i < n; ++i)
        total = std::max(total, asap[i] + cp[i]);
    auto slack = [&](unsigned i) { return (total - cp[i]) - asap[i]; };

    std::vector<unsigned> remainingPreds(n, 0);
    for (unsigned i = 0; i < n; ++i)
        remainingPreds[i] = static_cast<unsigned>(dag.preds(i).size());
    std::vector<char> scheduled(n, 0);

    // Per-GPR count of unscheduled readers, for the register-pressure
    // priority: an operand whose last reader issues "dies" there.
    std::array<unsigned, 32> readers{};
    for (unsigned i = 0; i < n; ++i) {
        const ResSet u = usesOf(dag.inst(i));
        for (unsigned r = 1; r < 32; ++r)
            if (u.hasGpr(r))
                ++readers[r];
    }
    auto pressureScore = [&](unsigned i) -> int {
        const Instruction &in = dag.inst(i);
        const ResSet u = usesOf(in);
        int dying = 0;
        for (unsigned r = 1; r < 32; ++r)
            if (u.hasGpr(r) && readers[r] == 1)
                ++dying;
        return dying - (in.destReg() != 0 ? 1 : 0);
    };

    int last = -1;
    for (unsigned step = 0; step < n; ++step) {
        // Candidates whose placement does not cost a load no-op, when
        // any exist; otherwise every ready node.
        int bestAny = -1, bestClean = -1;
        auto better = [&](unsigned i, int best) {
            if (best < 0)
                return true;
            const unsigned b = static_cast<unsigned>(best);
            switch (priority) {
              case SchedPriority::CriticalPath:
                return cp[i] > cp[b];
              case SchedPriority::Slack:
                return slack(i) < slack(b);
              case SchedPriority::RegPressure:
                return pressureScore(i) > pressureScore(b);
            }
            return false;
        };
        for (unsigned i = 0; i < n; ++i) {
            if (scheduled[i] || remainingPreds[i] != 0)
                continue;
            if (better(i, bestAny))
                bestAny = static_cast<int>(i);
            const bool clean =
                last < 0 || !dag.loadHazard(static_cast<unsigned>(last), i);
            if (clean && better(i, bestClean))
                bestClean = static_cast<int>(i);
        }
        const unsigned pick =
            static_cast<unsigned>(bestClean >= 0 ? bestClean : bestAny);
        order.push_back(pick);
        scheduled[pick] = 1;
        const ResSet u = usesOf(dag.inst(pick));
        for (unsigned r = 1; r < 32; ++r)
            if (u.hasGpr(r) && readers[r] > 0)
                --readers[r];
        for (const unsigned s : dag.succs(pick))
            --remainingPreds[s];
        last = static_cast<int>(pick);
    }
    return order;
}

// ---------------------------------------------------------------------
// Branch-and-bound optimal scheduling
// ---------------------------------------------------------------------

std::vector<unsigned>
scheduleOptimal(const Dag &dag, const std::vector<unsigned> &seed)
{
    const unsigned n = dag.size();
    if (n == 0)
        return {};
    if (n > 20)
        fatal("dag: scheduleOptimal called on a block too large for "
              "exhaustive search");

    std::vector<std::uint32_t> predMask(n, 0);
    for (const auto &e : dag.edges())
        predMask[e.to] |= std::uint32_t{1} << e.from;

    // Prime the bound with a known-good schedule; the search then only
    // has to find strict improvements, and ties keep the seed (which
    // makes the result deterministic and never worse than the list
    // scheduler).
    std::vector<unsigned> best =
        seed.empty() ? scheduleList(dag, SchedPriority::CriticalPath)
                     : seed;
    unsigned bestCost = dag.scheduleCost(best);

    const std::uint32_t full = (n == 32) ? ~std::uint32_t{0}
                                         : ((std::uint32_t{1} << n) - 1);
    // memo[mask * (n+1) + last+1]: fewest no-ops seen entering that
    // state; a revisit at >= no-ops cannot lead anywhere new.
    std::vector<std::uint8_t> memo(
        (std::size_t{1} << n) * (n + 1), 0xff);

    std::vector<unsigned> order;
    order.reserve(n);
    std::function<void(std::uint32_t, int, unsigned)> dfs =
        [&](std::uint32_t mask, int last, unsigned nops) {
            if (n + nops >= bestCost)
                return; // cannot strictly beat the incumbent
            const std::size_t key =
                std::size_t{mask} * (n + 1) +
                static_cast<std::size_t>(last + 1);
            if (memo[key] <= nops)
                return;
            memo[key] = static_cast<std::uint8_t>(nops);
            if (mask == full) {
                const unsigned cost = n + nops +
                    ((last >= 0 &&
                      dag.exitHazard(static_cast<unsigned>(last)))
                         ? 1u
                         : 0u);
                if (cost < bestCost) {
                    bestCost = cost;
                    best = order;
                }
                return;
            }
            for (unsigned i = 0; i < n; ++i) {
                if (mask & (std::uint32_t{1} << i))
                    continue;
                if ((predMask[i] & mask) != predMask[i])
                    continue;
                const unsigned extra =
                    (last >= 0 &&
                     dag.loadHazard(static_cast<unsigned>(last), i))
                        ? 1u
                        : 0u;
                order.push_back(i);
                dfs(mask | (std::uint32_t{1} << i),
                    static_cast<int>(i), nops + extra);
                order.pop_back();
            }
        };
    dfs(0, -1, 0);
    return best;
}

} // namespace mipsx::reorg
