/**
 * @file
 * The code reorganizer: the software half of the MIPS-X design.
 *
 * MIPS-X has no hardware interlocks; this postpass scheduler (in the
 * tradition of Gross & Hennessy's reorganizer, which the paper's Table 1
 * is measured with) lowers the assembler's sequential-semantics output to
 * the pipelined machine:
 *
 *  - every branch/jump gets its delay slots (2 by default, 1 for the
 *    quick-compare study) filled by one of three strategies:
 *      hoist   — move instructions from before the branch (always useful)
 *      target  — copy instructions from the taken path and mark the
 *                branch squash-if-not-taken (useful iff taken)
 *      fall    — move instructions from the fall-through path and mark
 *                the branch squash-if-taken (useful iff not taken)
 *    with the scheme (Table 1 row) selecting which strategies are legal;
 *  - the load delay of one is enforced by reordering an independent
 *    instruction into the load's shadow or inserting a no-op;
 *  - every placed instruction is annotated (SlotKind) so the pipeline
 *    can attribute wasted cycles exactly the way Table 1 does.
 */

#ifndef MIPSX_REORG_SCHEDULER_HH
#define MIPSX_REORG_SCHEDULER_HH

#include <cstdint>
#include <map>

#include "assembler/program.hh"
#include "reorg/cfg.hh"
#include "reorg/dag.hh"

namespace mipsx::reorg
{

/** The branch schemes of Table 1. */
enum class BranchScheme : std::uint8_t
{
    NoSquash = 0,       ///< slots always execute; hoist or no-op
    AlwaysSquash = 1,   ///< slots always squash-filled from a predicted path
    SquashOptional = 2, ///< best of no-squash and squashing per branch
};

const char *branchSchemeName(BranchScheme s);

/** Static branch prediction used to steer squash filling. */
enum class Prediction : std::uint8_t
{
    BackwardTaken, ///< loops: backward taken, forward not taken
    AlwaysTaken,
    Profile,       ///< use ReorgConfig::profile (falls back to backward)
};

/** Reorganizer configuration. */
struct ReorgConfig
{
    BranchScheme scheme = BranchScheme::SquashOptional;
    unsigned slots = isa::branchDelaySlots; ///< 1 or 2
    bool fillLoadDelay = true; ///< schedule the load delay (always safe)
    /**
     * Restrict to the squash types the real chip encodes (no-squash and
     * squash-if-not-taken). Table 1's always-squash row needs both
     * directions, so the study benches clear this.
     */
    bool paperFaithful = true;
    Prediction prediction = Prediction::BackwardTaken;
    /**
     * Which body-scheduling backend fills the load delay. Heuristic is
     * the original pull/push pass and the byte-identical default; List
     * and Optimal reorder each block body over the dependence DAG
     * (reorg/dag.hh) and then insert no-ops for whatever hazards remain.
     */
    SchedulerKind scheduler = SchedulerKind::Heuristic;
    /** Ready-set priority for the list scheduler. */
    SchedPriority priority = SchedPriority::CriticalPath;
    /**
     * Largest block (in body instructions) the Optimal backend searches
     * exhaustively; bigger blocks fall back to critical-path list
     * scheduling. 12 keeps the memoized state space around 50k entries.
     */
    unsigned optimalMaxNodes = 12;
    /** Per-branch taken fraction from a profiling run (original addrs). */
    std::map<addr_t, double> profile;
};

/** Scheduling statistics (static, per reorganization). */
struct ReorgStats
{
    std::uint64_t branches = 0; ///< conditional branches scheduled
    std::uint64_t jumps = 0;
    std::uint64_t slotsTotal = 0;
    std::uint64_t slotsHoisted = 0;
    std::uint64_t slotsFromTarget = 0;
    std::uint64_t slotsFromFall = 0;
    std::uint64_t slotsNop = 0;
    std::uint64_t chosenNoSquash = 0;
    std::uint64_t chosenSquashNotTaken = 0;
    std::uint64_t chosenSquashTaken = 0;
    std::uint64_t loadHazards = 0;   ///< load-use pairs needing action
    std::uint64_t loadReordered = 0; ///< fixed by moving an instruction
    std::uint64_t loadNops = 0;      ///< fixed by inserting a no-op
    std::uint64_t dagBlocks = 0;     ///< blocks scheduled via the DAG
    std::uint64_t dagOptimalExact = 0;    ///< blocks the oracle solved
    std::uint64_t dagOptimalFallback = 0; ///< too big; list fallback

    double
    slotFillRatio() const
    {
        return slotsTotal
            ? 1.0 - static_cast<double>(slotsNop) / slotsTotal
            : 0.0;
    }
};

/**
 * Reorganize @p prog for the pipelined machine. User text sections are
 * rescheduled; system text (hand-scheduled handlers) and data sections
 * pass through unchanged. Text symbols are remapped to the new layout.
 */
assembler::Program reorganize(const assembler::Program &prog,
                              const ReorgConfig &config = {},
                              ReorgStats *stats = nullptr);

/**
 * Validate a scheduled CFG: no instruction may read the destination of
 * the immediately preceding load on any execution path, and slot regions
 * must be exactly the configured length. Returns the number of
 * violations (0 for a correct schedule).
 */
unsigned verifySchedule(const Cfg &cfg, unsigned slots);

} // namespace mipsx::reorg

#endif // MIPSX_REORG_SCHEDULER_HH
