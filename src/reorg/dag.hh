/**
 * @file
 * The dependence-DAG IR the reorganizer's scheduling backends share.
 *
 * Nodes are the instructions of one basic-block body (after branch-slot
 * scheduling removed the hoisted/moved ones); edges are the constraints
 * any legal reordering must respect:
 *
 *  - Raw/War/Waw over the register resources (GPRs, MD, the coprocessor
 *    interface — the same ResSet the heuristic's independence test uses);
 *  - Mem between memory operations that do not commute (only load/load
 *    does, matching the conservative memConflict rule);
 *  - Order fences around instructions the scheduler must not relocate:
 *    PSW/chain special-register moves and pinned landing nodes (a
 *    retargeted branch enters the block there; moving code across that
 *    point would change what the branch path executes).
 *
 * The cost model mirrors exactly what the load-delay fixup pass will
 * emit for a given order: one cycle per instruction, plus one no-op for
 * every load whose destination the next-executed instruction reads —
 * including the block's exit reader (terminator or fall-through
 * landing), provided via setExitUses(). That makes "minimize cost over
 * all topological orders" the same thing as "minimize emitted no-ops",
 * which is what the branch-and-bound oracle proves lower bounds for.
 */

#ifndef MIPSX_REORG_DAG_HH
#define MIPSX_REORG_DAG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "reorg/cfg.hh"

namespace mipsx::reorg
{

// ---------------------------------------------------------------------
// Dependence analysis (shared by every backend and the verifier)
// ---------------------------------------------------------------------

/** Register/resource sets: GPR bits 0..31, MD bit 32, coproc bit 33. */
struct ResSet
{
    std::uint64_t bits = 0;

    void addGpr(unsigned r)
    {
        if (r != 0)
            bits |= std::uint64_t{1} << r;
    }
    void addMd() { bits |= std::uint64_t{1} << 32; }
    void addCop() { bits |= std::uint64_t{1} << 33; }

    bool intersects(const ResSet &o) const { return (bits & o.bits) != 0; }
    bool hasGpr(unsigned r) const
    {
        return r != 0 && (bits & (std::uint64_t{1} << r));
    }
};

ResSet defsOf(const isa::Instruction &in);
ResSet usesOf(const isa::Instruction &in);

bool isLoadOp(const isa::Instruction &in);
bool isStoreOp(const isa::Instruction &in);

/** Conservative memory-dependence test between two instructions. */
bool memConflict(const isa::Instruction &a, const isa::Instruction &b);

/** Instructions the scheduler may relocate or execute speculatively. */
bool movable(const isa::Instruction &in);

/**
 * True if @p x may move across @p y (in either direction) without
 * changing dataflow.
 */
bool independent(const isa::Instruction &x, const isa::Instruction &y);

InstrNode makeNop(NodeId id, assembler::SlotKind kind);

// ---------------------------------------------------------------------
// The scheduling framework
// ---------------------------------------------------------------------

/** Which body-scheduling backend reorganize() runs. */
enum class SchedulerKind : std::uint8_t
{
    Heuristic = 0, ///< the original hand-rolled pull/push load pass
    List = 1,      ///< DAG list scheduling with a priority function
    Optimal = 2,   ///< branch-and-bound oracle for small blocks
};

const char *schedulerKindName(SchedulerKind k);

/** Priority function for the list scheduler's ready set. */
enum class SchedPriority : std::uint8_t
{
    CriticalPath = 0, ///< longest latency-weighted path to the exit
    Slack = 1,        ///< ALAP - ASAP; least slack first
    RegPressure = 2,  ///< free dying operands before defining new ones
};

const char *schedPriorityName(SchedPriority p);

/** Why an edge exists (the strongest reason, for the DOT dump). */
enum class DepKind : std::uint8_t
{
    Raw = 0,
    Waw,
    War,
    Mem,
    Order, ///< fence: immovable instruction or pinned landing node
};

struct DagEdge
{
    unsigned from = 0;
    unsigned to = 0;
    DepKind kind = DepKind::Raw;
};

/** The dependence DAG of one block body. Nodes keep body-index order. */
class Dag
{
  public:
    /**
     * Build the DAG for @p body. @p pinned flags (parallel to the body,
     * may be empty for "none") mark landing nodes, which become full
     * fences: nothing may cross them in either direction.
     */
    static Dag build(const std::vector<InstrNode> &body,
                     const std::vector<char> &pinned = {});

    unsigned size() const { return static_cast<unsigned>(nodes_.size()); }
    const InstrNode &node(unsigned i) const { return *nodes_[i]; }
    const isa::Instruction &inst(unsigned i) const
    {
        return nodes_[i]->inst;
    }
    const std::vector<DagEdge> &edges() const { return edges_; }
    const std::vector<unsigned> &preds(unsigned i) const
    {
        return preds_[i];
    }
    const std::vector<unsigned> &succs(unsigned i) const
    {
        return succs_[i];
    }

    /**
     * GPR mask the first instruction executed *after* the block reads
     * (the terminator, or the fall-through landing when there is none).
     * A load scheduled last whose destination is in this mask costs one
     * no-op, exactly as the fixup pass will emit one.
     */
    void setExitUses(std::uint32_t mask) { exitUses_ = mask; }
    std::uint32_t exitUses() const { return exitUses_; }

    /**
     * Edge latency: 2 when @p from is a GPR load whose destination
     * @p to reads (the consumer needs a one-cycle gap), else 1.
     */
    unsigned latency(unsigned from, unsigned to) const;

    /** True when placing @p b directly after @p a costs a load no-op. */
    bool loadHazard(unsigned a, unsigned b) const;

    /** True when @p i placed last costs an exit no-op. */
    bool exitHazard(unsigned i) const;

    /**
     * Latency-weighted longest path from each node to the block exit
     * (each node contributes at least its own cycle).
     */
    std::vector<unsigned> criticalPaths() const;

    /** True iff @p order is a permutation respecting every edge. */
    bool validOrder(const std::vector<unsigned> &order) const;

    /**
     * Cycles the fixup pass will emit for @p order: node count plus one
     * per load-use adjacency plus the exit hazard. Fatals on an invalid
     * order — cost only means anything for legal schedules.
     */
    unsigned scheduleCost(const std::vector<unsigned> &order) const;

    /** The identity (original program order) cost. */
    unsigned originalCost() const;

    /** Graphviz dump for debugging oracle-bound violations. */
    std::string dot(const std::string &title) const;

  private:
    std::vector<const InstrNode *> nodes_;
    std::vector<char> pinned_;
    std::vector<DagEdge> edges_;
    std::vector<std::vector<unsigned>> preds_;
    std::vector<std::vector<unsigned>> succs_;
    std::uint32_t exitUses_ = 0;
};

/**
 * List-schedule @p dag: repeatedly pick, from the ready set, a node
 * that avoids the previous node's load shadow when any candidate can,
 * then the best by @p priority, ties broken by original body index —
 * so the result is deterministic for a given (dag, priority).
 */
std::vector<unsigned> scheduleList(const Dag &dag, SchedPriority priority);

/**
 * Exhaustive branch-and-bound over all topological orders, memoized on
 * (scheduled-set, last-node); minimizes scheduleCost(). Only legal for
 * dag.size() <= 20 or so in principle; reorganize() caps it at
 * ReorgConfig::optimalMaxNodes and falls back to the critical-path list
 * scheduler above that. Returns the first minimal-cost order found in
 * index-order DFS (deterministic). @p seed, when non-empty, must be a
 * valid order and primes the upper bound.
 */
std::vector<unsigned> scheduleOptimal(const Dag &dag,
                                      const std::vector<unsigned> &seed = {});

} // namespace mipsx::reorg

#endif // MIPSX_REORG_DAG_HH
