#include "reorg/predictor.hh"

#include "common/bitfield.hh"
#include "common/sim_error.hh"

namespace mipsx::reorg
{

BranchCacheModel::BranchCacheModel(unsigned entries, unsigned ways)
    : entries_(entries), ways_(ways)
{
    if (entries == 0 || ways == 0 || entries % ways != 0)
        fatal("BranchCacheModel: entries must be a multiple of ways");
    sets_ = entries / ways;
    if (!isPowerOf2(sets_))
        fatal("BranchCacheModel: sets must be a power of two");
    lines_.assign(entries, {});
}

BranchCacheModel::Line *
BranchCacheModel::find(addr_t pc)
{
    const unsigned set = pc % sets_;
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == pc)
            return &base[w];
    return nullptr;
}

BranchCacheModel::Line &
BranchCacheModel::allocate(addr_t pc)
{
    const unsigned set = pc % sets_;
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    Line *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return *victim;
}

bool
BranchCacheModel::predict(const sim::BranchEvent &ev)
{
    ++lookups_;
    ++clock_;
    if (Line *l = find(ev.pc)) {
        ++hits_;
        l->lastUse = clock_;
        return l->counter >= 2;
    }
    return false; // miss: fetch falls through sequentially
}

void
BranchCacheModel::update(const sim::BranchEvent &ev)
{
    Line *l = find(ev.pc);
    if (!l) {
        Line &v = allocate(ev.pc);
        v.valid = true;
        v.tag = ev.pc;
        v.counter = ev.taken ? 2 : 1;
        v.lastUse = clock_;
        return;
    }
    if (ev.taken) {
        if (l->counter < 3)
            ++l->counter;
    } else {
        if (l->counter > 0)
            --l->counter;
    }
}

} // namespace mipsx::reorg
