#include "memory/main_memory.hh"

namespace mipsx::memory
{

void
MainMemory::loadProgram(const assembler::Program &prog)
{
    for (const auto &sec : prog.sections) {
        for (std::size_t i = 0; i < sec.words.size(); ++i) {
            write(sec.space, sec.base + static_cast<addr_t>(i),
                  sec.words[i]);
        }
    }
}

} // namespace mipsx::memory
