#include "memory/main_memory.hh"

namespace mipsx::memory
{

void
MainMemory::loadProgram(const assembler::Program &prog)
{
    for (const auto &sec : prog.sections) {
        for (std::size_t i = 0; i < sec.words.size(); ++i) {
            write(sec.space, sec.base + static_cast<addr_t>(i),
                  sec.words[i]);
        }
    }
    // Decode the program once up front so the simulators' per-fetch
    // cost is an array index (the writes above invalidated any decodes
    // cached from a previously loaded image).
    if (predecode_) {
        for (const auto &sec : prog.sections) {
            if (!sec.isText)
                continue;
            for (std::size_t i = 0; i < sec.words.size(); ++i) {
                const word_t w = sec.words[i];
                decoded_.fetch(
                    physKey(sec.space, sec.base + static_cast<addr_t>(i)),
                    [w] { return w; });
            }
        }
    }
}

} // namespace mipsx::memory
