#include "memory/main_memory.hh"

namespace mipsx::memory
{

void
MainMemory::loadProgram(const assembler::Program &prog,
                        const DecodedImage::Snapshot *decoded)
{
    for (const auto &sec : prog.sections) {
        for (std::size_t i = 0; i < sec.words.size(); ++i) {
            write(sec.space, sec.base + static_cast<addr_t>(i),
                  sec.words[i]);
        }
    }
    if (!predecode_)
        return;
    // Decode the program once up front so the simulators' per-fetch
    // cost is an array index (the writes above invalidated any decodes
    // cached from a previously loaded image). A prepared snapshot makes
    // this a hand-over of shared pages instead of a decode pass.
    if (decoded) {
        decoded_.adopt(*decoded);
        return;
    }
    for (const auto &sec : prog.sections) {
        if (!sec.isText)
            continue;
        for (std::size_t i = 0; i < sec.words.size(); ++i) {
            const word_t w = sec.words[i];
            decoded_.fetch(
                physKey(sec.space, sec.base + static_cast<addr_t>(i)),
                [w] { return w; });
        }
    }
}

} // namespace mipsx::memory
