/**
 * @file
 * The on-chip MIPS-X instruction cache.
 *
 * Organisation (paper, "The Instruction Cache" and "A Hardware Overview"):
 * 512 words arranged as an 8-way set-associative cache with 4 sets (rows)
 * and 16 words per block (line). A sub-block placement scheme is used, so
 * there are 512 valid bits — one per word — plus 32 tags. The tags and
 * valid bits live in the datapath next to the PC unit, which is what makes
 * a 2-cycle miss possible (the implementation mattered more than the
 * organisation: a 3-cycle miss would have cost more than the miss-ratio
 * benefit of smaller blocks).
 *
 * On a miss the pipeline stalls for `missPenalty` cycles, and the two miss
 * cycles are used to fetch back *two* instructions — the one that missed
 * and the next one to be executed. "Fetching back 2 words almost halves
 * the miss ratio, driving down the cost of an instruction fetch to that of
 * a single-cycle miss." Both behaviours are configurable so the paper's
 * tradeoff studies can be re-run.
 *
 * The model is timing-only: instruction bits always come from main memory;
 * the cache tracks tags/valid bits and returns stall cycles plus the list
 * of words fetched from the next level (so the machine can charge the
 * Ecache for the refill traffic).
 */

#ifndef MIPSX_MEMORY_ICACHE_HH
#define MIPSX_MEMORY_ICACHE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "memory/main_memory.hh"
#include "stats/stats.hh"

namespace mipsx::memory
{

/** Replacement policy used when a new block needs a way. */
enum class IReplPolicy : std::uint8_t
{
    Lru,
    Fifo,
    Random,
};

/** Instruction cache configuration. Defaults are the paper's design. */
struct ICacheConfig
{
    unsigned sets = 4;        ///< rows
    unsigned ways = 8;        ///< associativity
    unsigned blockWords = 16; ///< words per block (line)
    /**
     * Cycles the machine stalls on a miss. 2 in the real chip (tags in
     * the datapath); 3 models the rejected far-tag-store implementation;
     * 1 models the rejected write-during-return design.
     */
    unsigned missPenalty = 2;
    /** Words fetched back per miss: 1, or 2 for the double fetch. */
    unsigned fetchWords = 2;
    /**
     * What happens when the second fetched word falls in the next block:
     * if true, allocate/fill that block too; if false (default) the word
     * is written only when its block already has a matching tag.
     */
    bool allocCrossBlock = false;
    IReplPolicy repl = IReplPolicy::Lru;
    /** The instruction-register test feature: run with the cache off. */
    bool enabled = true;

    unsigned totalWords() const { return sets * ways * blockWords; }

    /**
     * Reject ill-formed geometries (zero or non-power-of-two sets or
     * blockWords, zero ways, fetchWords outside 1..2) with a SimError.
     * The ICache constructor calls this; config builders (MachineConfig
     * validation, the explore engine) call it directly so errors
     * surface before any machine is built.
     */
    void validate() const;
};

/** Result of one instruction fetch. */
struct IFetchResult
{
    bool hit = true;
    unsigned stallCycles = 0; ///< the cache's own miss penalty
    unsigned numRefills = 0;  ///< words fetched from the next level (0..2)
    std::array<std::uint64_t, 2> refillKeys{}; ///< physKey of each refill
};

/** The on-chip instruction cache model. */
class ICache
{
  public:
    explicit ICache(const ICacheConfig &config = {});

    /**
     * Fetch the instruction at @p pc in @p space.
     *
     * The common case — another fetch within the last block hit — is
     * decided inline; everything else takes the outlined slow path.
     *
     * @param cacheable false to model the rejected "non-cached coprocessor
     *        instruction" scheme: the access always misses and nothing is
     *        written into the cache.
     */
    IFetchResult
    fetch(AddressSpace space, addr_t pc, bool cacheable = true)
    {
        ++accesses_;
        ++useClock_;
        const std::uint64_t key = physKey(space, pc);
        const std::uint64_t block_addr = key >> blockShift_;
        // Sequential fetch streams stay within one block for most of its
        // words; remember the last block hit and skip the way search.
        // lastBlock_ is only ever set while the cache is enabled.
        if (lastBlock_ && block_addr == lastBlockAddr_ && cacheable &&
            lastBlock_->valid[key & blockMask_]) {
            lastBlock_->lastUse = useClock_;
            return {};
        }
        return fetchSlow(key, block_addr, cacheable);
    }

    /** Invalidate all blocks. */
    void reset();

    const ICacheConfig &config() const { return config_; }

    // Statistics.
    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    /** Misses where no way held the block's tag. */
    std::uint64_t tagMisses() const { return tagMisses_.value(); }
    /** Misses where the tag was present but the word's valid bit clear. */
    std::uint64_t subBlockMisses() const { return subBlockMisses_.value(); }
    /** Words fetched back from the next level (2 per double-fetch miss). */
    std::uint64_t refillWords() const { return refillWords_.value(); }
    std::uint64_t stallCycles() const { return stallCycles_.value(); }
    double missRatio() const { return stats::ratio(misses_, accesses_); }
    /** Average cost of an instruction fetch in cycles (paper: 1.24). */
    double
    avgFetchCost() const
    {
        return 1.0 + stats::ratio(stallCycles_, accesses_);
    }
    void clearStats();

  private:
    struct Block
    {
        bool anyValid = false;
        std::uint64_t tag = 0;
        /// One flag per word (sub-block scheme). uint8_t, not
        /// vector<bool>: the per-fetch valid test is on the hot path.
        std::vector<std::uint8_t> valid;
        std::uint64_t lastUse = 0;
        std::uint64_t allocTime = 0;
    };

    IFetchResult fetchSlow(std::uint64_t key, std::uint64_t block_addr,
                           bool cacheable);
    Block &blockAt(unsigned set, unsigned way);
    /** Find the way holding @p tag in @p set, or -1. */
    int findWay(unsigned set, std::uint64_t tag) const;
    /** Choose a victim way in @p set per the replacement policy. */
    unsigned chooseVictim(unsigned set);
    /** Write one word into the cache if its block can accept it. */
    void fillWord(std::uint64_t key, bool may_allocate);

    ICacheConfig config_;
    // sets and blockWords are enforced powers of two, so the per-fetch
    // address split is shift/mask instead of runtime divide/modulo.
    unsigned blockShift_ = 0;
    std::uint64_t blockMask_ = 0;
    unsigned setShift_ = 0;
    std::uint64_t setMask_ = 0;
    std::vector<Block> blocks_; ///< sets x ways, row-major
    // One-entry fetch shortcut: the block (and its address) the last hit
    // landed in. blocks_ never reallocates, so the pointer is stable;
    // cleared whenever any block's tag is replaced.
    Block *lastBlock_ = nullptr;
    std::uint64_t lastBlockAddr_ = 0;
    std::uint64_t useClock_ = 0;
    std::uint32_t rng_ = 0x2545f491;

    stats::Counter accesses_;
    stats::Counter misses_;
    stats::Counter tagMisses_;
    stats::Counter subBlockMisses_;
    stats::Counter refillWords_;
    stats::Counter stallCycles_;
};

} // namespace mipsx::memory

#endif // MIPSX_MEMORY_ICACHE_HH
