#include "memory/decoded_image.hh"

#include <algorithm>

#include "assembler/program.hh"
#include "memory/main_memory.hh"

namespace mipsx::memory
{

DecodedImage::Snapshot
DecodedImage::snapshotProgram(const assembler::Program &prog)
{
    std::unordered_map<std::uint64_t, std::shared_ptr<Page>> building;
    for (const auto &sec : prog.sections) {
        if (!sec.isText)
            continue;
        for (std::size_t i = 0; i < sec.words.size(); ++i) {
            const std::uint64_t key =
                physKey(sec.space, sec.base + static_cast<addr_t>(i));
            auto &p = building[key / pageWords];
            if (!p)
                p = std::make_shared<Page>();
            const std::size_t idx = key % pageWords;
            ::new (&p->slot[idx].inst)
                isa::Instruction(isa::decode(sec.words[i]));
            p->present[idx] = true;
            p->chainable[idx] = true;
        }
    }
    // Fetch-ahead margin: the pipeline's fetch unit runs ahead of
    // retire, so nearly every run fetches a few words past the end of
    // text before its halt retires. In a freshly loaded image those
    // words read as zero; predecoding them here lets that prefetch hit
    // the shared page instead of forcing a full private clone of it.
    // Words owned by a data section are skipped (their raw content is
    // the section's, not zero), as are pages the snapshot doesn't hold
    // (a clean page miss builds an owned page — no clone either way).
    static constexpr addr_t prefetchMargin = 32;
    const isa::Instruction zeroInst = isa::decode(0);
    for (const auto &sec : prog.sections) {
        if (!sec.isText)
            continue;
        const addr_t end =
            sec.base + static_cast<addr_t>(sec.words.size());
        for (addr_t a = end; a < end + prefetchMargin; ++a) {
            const std::uint64_t key = physKey(sec.space, a);
            const auto it = building.find(key / pageWords);
            if (it == building.end())
                continue;
            Page &p = *it->second;
            const std::size_t idx = key % pageWords;
            if (p.present[idx])
                continue; // another text section's code
            bool data = false;
            for (const auto &other : prog.sections)
                if (!other.isText && other.space == sec.space &&
                    a >= other.base && a < other.end())
                    data = true;
            if (data)
                continue;
            ::new (&p.slot[idx].inst) isa::Instruction(zeroInst);
            p.present[idx] = true;
            // Margin nops are a fetch-side convenience only: they stay
            // non-chainable so superblock discovery stops at the last
            // real text word instead of running on into words the
            // program never assembled (the executor would happily run
            // a block of nops the pipeline never fetches).
            p.chainable[idx] = false;
        }
    }
    // Precompute every block length while the pages are still private:
    // adopted snapshot pages are immutable, so a run could otherwise
    // never cache a discovery on them. One backward pass per page gives
    // blockLen[i] = 1 + blockLen[i+1] (capped) wherever word i+1
    // qualifies, which is exactly what discoverBlock() walks forward.
    for (auto &[key, page] : building) {
        Page &p = *page;
        for (std::size_t i = pageWords; i-- > 0;) {
            if (!p.present[i])
                continue; // stays 0: absent words never start blocks
            if (!p.chainable[i] ||
                !isa::opBlockSafe(p.slot[i].inst.op)) {
                p.blockLen[i] = noBlock;
                continue;
            }
            std::uint16_t next = 0;
            if (i + 1 < pageWords && p.present[i + 1] &&
                p.chainable[i + 1] && p.blockLen[i + 1] != noBlock)
                next = p.blockLen[i + 1];
            p.blockLen[i] = static_cast<std::uint16_t>(
                std::min<unsigned>(1u + next, maxBlockWords));
        }
    }
    Snapshot snap;
    snap.reserve(building.size());
    for (auto &[key, page] : building)
        snap.emplace(key, std::move(page));
    return snap;
}

void
DecodedImage::adopt(const Snapshot &snap)
{
    for (const auto &[key, page] : snap) {
        Entry &e = pages_[key];
        // The shared page travels through the same pointer type as an
        // owned one; owned=false gates every mutation path through
        // writablePage(), which clones first, so constness is honoured
        // in practice even though the cast discards it.
        e.page = std::const_pointer_cast<Page>(page);
        e.owned = false;
    }
    lastKey_ = noPage;
    lastEntry_ = nullptr;
    lastPage_ = nullptr;
}

std::uint16_t
DecodedImage::discoverBlock(const Page &p, std::size_t idx)
{
    if (!isa::opBlockSafe(p.slot[idx].inst.op))
        return noBlock;
    const std::size_t lim =
        std::min<std::size_t>(pageWords, idx + maxBlockWords);
    std::size_t i = idx + 1;
    while (i < lim && p.present[i] && p.chainable[i] &&
           isa::opBlockSafe(p.slot[i].inst.op))
        ++i;
    return static_cast<std::uint16_t>(i - idx);
}

} // namespace mipsx::memory
