#include "memory/decoded_image.hh"

#include "assembler/program.hh"
#include "memory/main_memory.hh"

namespace mipsx::memory
{

DecodedImage::Snapshot
DecodedImage::snapshotProgram(const assembler::Program &prog)
{
    std::unordered_map<std::uint64_t, std::shared_ptr<Page>> building;
    for (const auto &sec : prog.sections) {
        if (!sec.isText)
            continue;
        for (std::size_t i = 0; i < sec.words.size(); ++i) {
            const std::uint64_t key =
                physKey(sec.space, sec.base + static_cast<addr_t>(i));
            auto &p = building[key / pageWords];
            if (!p)
                p = std::make_shared<Page>();
            const std::size_t idx = key % pageWords;
            ::new (&p->slot[idx].inst)
                isa::Instruction(isa::decode(sec.words[i]));
            p->present[idx] = true;
        }
    }
    // Fetch-ahead margin: the pipeline's fetch unit runs ahead of
    // retire, so nearly every run fetches a few words past the end of
    // text before its halt retires. In a freshly loaded image those
    // words read as zero; predecoding them here lets that prefetch hit
    // the shared page instead of forcing a full private clone of it.
    // Words owned by a data section are skipped (their raw content is
    // the section's, not zero), as are pages the snapshot doesn't hold
    // (a clean page miss builds an owned page — no clone either way).
    static constexpr addr_t prefetchMargin = 32;
    const isa::Instruction zeroInst = isa::decode(0);
    for (const auto &sec : prog.sections) {
        if (!sec.isText)
            continue;
        const addr_t end =
            sec.base + static_cast<addr_t>(sec.words.size());
        for (addr_t a = end; a < end + prefetchMargin; ++a) {
            const std::uint64_t key = physKey(sec.space, a);
            const auto it = building.find(key / pageWords);
            if (it == building.end())
                continue;
            Page &p = *it->second;
            const std::size_t idx = key % pageWords;
            if (p.present[idx])
                continue; // another text section's code
            bool data = false;
            for (const auto &other : prog.sections)
                if (!other.isText && other.space == sec.space &&
                    a >= other.base && a < other.end())
                    data = true;
            if (data)
                continue;
            ::new (&p.slot[idx].inst) isa::Instruction(zeroInst);
            p.present[idx] = true;
        }
    }
    Snapshot snap;
    snap.reserve(building.size());
    for (auto &[key, page] : building)
        snap.emplace(key, std::move(page));
    return snap;
}

void
DecodedImage::adopt(const Snapshot &snap)
{
    for (const auto &[key, page] : snap) {
        Entry &e = pages_[key];
        // The shared page travels through the same pointer type as an
        // owned one; owned=false gates every mutation path through
        // writablePage(), which clones first, so constness is honoured
        // in practice even though the cast discards it.
        e.page = std::const_pointer_cast<Page>(page);
        e.owned = false;
    }
    lastKey_ = noPage;
    lastEntry_ = nullptr;
    lastPage_ = nullptr;
}

} // namespace mipsx::memory
