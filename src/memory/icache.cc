#include "memory/icache.hh"

#include "common/bitfield.hh"
#include "common/sim_error.hh"

namespace mipsx::memory
{

void
ICacheConfig::validate() const
{
    if (!isPowerOf2(sets))
        fatal("ICache: sets must be a non-zero power of two");
    if (!isPowerOf2(blockWords))
        fatal("ICache: blockWords must be a non-zero power of two");
    if (ways == 0)
        fatal("ICache: ways must be at least 1");
    if (fetchWords < 1 || fetchWords > 2)
        fatal("ICache: fetchWords must be 1 or 2");
}

ICache::ICache(const ICacheConfig &config) : config_(config)
{
    config_.validate();
    blockShift_ = log2i(config_.blockWords);
    blockMask_ = config_.blockWords - 1;
    setShift_ = log2i(config_.sets);
    setMask_ = config_.sets - 1;
    blocks_.assign(static_cast<std::size_t>(config_.sets) * config_.ways,
                   Block{});
    for (auto &b : blocks_)
        b.valid.assign(config_.blockWords, 0);
}

void
ICache::reset()
{
    for (auto &b : blocks_) {
        b.anyValid = false;
        b.tag = 0;
        b.lastUse = 0;
        b.allocTime = 0;
        b.valid.assign(config_.blockWords, 0);
    }
    lastBlock_ = nullptr;
    useClock_ = 0;
}

void
ICache::clearStats()
{
    accesses_.reset();
    misses_.reset();
    tagMisses_.reset();
    subBlockMisses_.reset();
    refillWords_.reset();
    stallCycles_.reset();
}

ICache::Block &
ICache::blockAt(unsigned set, unsigned way)
{
    return blocks_[static_cast<std::size_t>(set) * config_.ways + way];
}

int
ICache::findWay(unsigned set, std::uint64_t tag) const
{
    const auto *base =
        &blocks_[static_cast<std::size_t>(set) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w)
        if (base[w].anyValid && base[w].tag == tag)
            return static_cast<int>(w);
    return -1;
}

unsigned
ICache::chooseVictim(unsigned set)
{
    auto *base = &blocks_[static_cast<std::size_t>(set) * config_.ways];
    // Always prefer an invalid way first.
    for (unsigned w = 0; w < config_.ways; ++w)
        if (!base[w].anyValid)
            return w;

    switch (config_.repl) {
      case IReplPolicy::Lru: {
        unsigned victim = 0;
        for (unsigned w = 1; w < config_.ways; ++w)
            if (base[w].lastUse < base[victim].lastUse)
                victim = w;
        return victim;
      }
      case IReplPolicy::Fifo: {
        unsigned victim = 0;
        for (unsigned w = 1; w < config_.ways; ++w)
            if (base[w].allocTime < base[victim].allocTime)
                victim = w;
        return victim;
      }
      case IReplPolicy::Random:
        // xorshift32
        rng_ ^= rng_ << 13;
        rng_ ^= rng_ >> 17;
        rng_ ^= rng_ << 5;
        return rng_ % config_.ways;
    }
    return 0;
}

void
ICache::fillWord(std::uint64_t key, bool may_allocate)
{
    const std::uint64_t block_addr = key >> blockShift_;
    const unsigned offset = static_cast<unsigned>(key & blockMask_);
    const unsigned set = static_cast<unsigned>(block_addr & setMask_);
    const std::uint64_t tag = block_addr >> setShift_;

    int way = findWay(set, tag);
    if (way < 0) {
        if (!may_allocate)
            return;
        way = static_cast<int>(chooseVictim(set));
        Block &b = blockAt(set, static_cast<unsigned>(way));
        // The victim's tag changes: drop the last-block shortcut rather
        // than track whether it pointed here.
        lastBlock_ = nullptr;
        // Sub-block replacement: a fresh tag invalidates every word.
        b.anyValid = true;
        b.tag = tag;
        b.valid.assign(config_.blockWords, 0);
        b.allocTime = useClock_;
    }
    Block &b = blockAt(set, static_cast<unsigned>(way));
    b.valid[offset] = 1;
    b.lastUse = useClock_;
}

IFetchResult
ICache::fetchSlow(std::uint64_t key, std::uint64_t block_addr,
                  bool cacheable)
{
    const unsigned offset = static_cast<unsigned>(key & blockMask_);

    IFetchResult res;

    const unsigned set = static_cast<unsigned>(block_addr & setMask_);
    const std::uint64_t tag = block_addr >> setShift_;

    if (config_.enabled && cacheable) {
        const int way = findWay(set, tag);
        if (way >= 0) {
            Block &b = blockAt(set, static_cast<unsigned>(way));
            if (b.valid[offset]) {
                b.lastUse = useClock_;
                lastBlock_ = &b;
                lastBlockAddr_ = block_addr;
                return res; // hit
            }
            ++subBlockMisses_;
        } else {
            ++tagMisses_;
        }
    }

    // Miss (or a non-cacheable / cache-disabled fetch).
    ++misses_;
    res.hit = false;
    res.stallCycles = config_.missPenalty;
    stallCycles_ += config_.missPenalty;

    if (!config_.enabled || !cacheable) {
        // The instruction-register path: the word comes over the data bus
        // and is not written into the array.
        res.numRefills = 1;
        res.refillKeys[0] = key;
        return res;
    }

    // Fetch back the missing word (allocating its block if needed) ...
    res.numRefills = 1;
    res.refillKeys[0] = key;
    fillWord(key, true);

    // ... and, with the double fetch, the next word to be executed.
    // "Next" must stay within the missing word's address space: a key
    // is (space << 32) | addr, so a bare key + 1 at the last word of
    // the space would carry into the space bits and fetch (and charge
    // the Ecache for) an aliased word of the *other* space — there is
    // no instruction after 0xffffffff for the fetch-back to help.
    if (config_.fetchWords == 2 &&
        (key & 0xffffffffull) != 0xffffffffull) {
        const std::uint64_t next = key + 1;
        res.refillKeys[res.numRefills++] = next;
        const bool same_block = (next >> blockShift_) == block_addr;
        fillWord(next, same_block || config_.allocCrossBlock);
    }
    // Only array writes count as refill words (the energy model prices
    // them); the instruction-register path above writes nothing.
    refillWords_ += res.numRefills;
    return res;
}

} // namespace mipsx::memory
