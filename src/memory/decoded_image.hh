/**
 * @file
 * The predecoded instruction store.
 *
 * Both simulators used to re-run isa::decode() on every fetch, exactly
 * the cost the MIPS-X group avoided in their own instruction-level
 * simulator by decoding programs once up front. The DecodedImage is a
 * page-granular shadow of main memory holding one decoded Instruction
 * per word: the first fetch of a word decodes it, every later fetch is
 * an array index. Correctness with self-modifying code (and with the
 * reorganizer's store-patched jump tables) comes from one rule:
 *
 *   every MainMemory::write() invalidates the word's cached decode, so
 *   the next fetch re-decodes the new encoding.
 *
 * Pages can additionally be *shared*: snapshotProgram() predecodes a
 * program's text sections into immutable pages that adopt() installs
 * into any number of DecodedImages (the prepared-workload cache hands
 * one snapshot to every suite run, sweep point and cosim leg). Shared
 * pages are copy-on-write — the first invalidation or decode miss on a
 * shared page clones it privately — so self-modifying code in one run
 * can never leak a patched decode into another run, and the
 * invalidation rule above stays exact.
 *
 * The store is purely functional — it never affects timing. The I-cache
 * remains the timing model of instruction fetch; this is the data path.
 */

#ifndef MIPSX_MEMORY_DECODED_IMAGE_HH
#define MIPSX_MEMORY_DECODED_IMAGE_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/types.hh"
#include "isa/decode.hh"
#include "isa/instruction.hh"

namespace mipsx::assembler
{
struct Program;
} // namespace mipsx::assembler

namespace mipsx::memory
{

/** A decode-once cache of instruction words, keyed like MainMemory. */
class DecodedImage
{
    // The union leaves the Instruction payload uninitialized: a fresh
    // page costs one present[] clear instead of default-building
    // pageWords Instruction records, which would dominate short runs.
    union Slot
    {
        isa::Instruction inst;
        Slot() {}
    };
    static_assert(std::is_trivially_destructible_v<isa::Instruction>,
                  "Slot union skips destruction of cached decodes");

  public:
    // 2048 words (a ~72 KB Page with the superblock metadata) keeps
    // sizeof(Page) under glibc's 128 KB mmap threshold, so per-run page
    // allocations recycle through the heap instead of paying mmap +
    // first-touch faults — measurably the dominant cost of short runs
    // at 4096 words.
    static constexpr unsigned pageWords = 2048;

    /** blockLen value: this word cannot start a superblock. */
    static constexpr std::uint16_t noBlock = 0xffff;
    /**
     * Superblock length cap. Bounds the executor's worst-case interrupt
     * delivery latency (interrupts are only sampled at block
     * boundaries) and the cost of rediscovering lengths after an
     * invalidation cleared them.
     */
    static constexpr unsigned maxBlockWords = 256;

    struct Page
    {
        std::array<Slot, pageWords> slot;
        std::array<bool, pageWords> present{};
        // Superblock metadata, invalidated exactly with the decodes
        // above (invalidate() clears both, COW clones copy both):
        //  - blockLen[i] caches the length of the straight-line block
        //    starting at word i: 0 = not yet computed, noBlock = word i
        //    cannot start a block, else 1..maxBlockWords;
        //  - chainable[i] marks decodes of words that are real program
        //    text (or were genuinely fetched at run time), as opposed
        //    to the speculative fetch-ahead margin nops past the end of
        //    text, which blocks must never chain into.
        std::array<std::uint16_t, pageWords> blockLen{};
        std::array<bool, pageWords> chainable{};
    };

    /**
     * Immutable predecoded pages, shared between DecodedImages by
     * shared_ptr; the map key is physKey / pageWords.
     */
    using Snapshot =
        std::unordered_map<std::uint64_t, std::shared_ptr<const Page>>;

    /**
     * Predecode every text-section word of @p prog into shareable
     * pages. Data sections are excluded on purpose: they are never
     * fetched as instructions, and leaving their pages absent keeps
     * data stores on the cheap no-page path of invalidate().
     */
    static Snapshot snapshotProgram(const assembler::Program &prog);

    /**
     * Install the pages of @p snap as shared (copy-on-write) entries.
     * Call after the program image is loaded; a later invalidate() or
     * decode miss on a shared page clones it privately first, so the
     * snapshot itself is never modified.
     */
    void adopt(const Snapshot &snap);

    /**
     * The decoded instruction for the word at @p key (a physKey).
     * @p raw is called to read the word only when no cached decode
     * exists, so a hit touches neither main memory nor the decoder.
     */
    template <typename RawFn>
    const isa::Instruction &
    fetch(std::uint64_t key, RawFn &&raw)
    {
        // Hot path reads through lastPage_ (a raw Page*) so a hit costs
        // the same one dependent load it did before pages could be
        // shared; entryFor()/writablePage() keep the pointer current.
        Entry &e = entryFor(key / pageWords);
        const std::size_t idx = key % pageWords;
        if (!lastPage_->present[idx]) {
            Page &p = writablePage(e);
            ::new (&p.slot[idx].inst) isa::Instruction(isa::decode(raw()));
            p.present[idx] = true;
            // A genuine fetch: superblocks may chain through this word
            // (unlike the snapshot's speculative fetch-ahead nops).
            p.chainable[idx] = true;
            return p.slot[idx].inst;
        }
        return lastPage_->slot[idx].inst;
    }

    /**
     * The superblock starting at @p key: a straight-line run of
     * already-decoded, block-safe instructions (isa::opBlockSafe) that
     * ends at the first control transfer / coprocessor op / PSW write,
     * at the first absent or non-chainable decode, at the page
     * boundary, or at maxBlockWords — whichever comes first.
     *
     * Returns the run length and points @p insts at the first cached
     * decode (the run is contiguous in the page); 0 means "no block
     * here, single-step instead". @p hold keeps the page alive for the
     * duration of the block's execution: an in-block store may clone or
     * replace the page under us, and the executor detects that via
     * generation() and aborts, but the decodes it already points at
     * must stay valid. The hold is only reassigned when the page
     * changes, so consecutive blocks in one page don't touch the
     * refcount.
     *
     * Never decodes new words — discovery is a pure function of what
     * fetch()/snapshotProgram() already cached, so a cold word falls
     * back to the stepping path (which decodes it) and forms blocks
     * from the next visit on.
     */
    unsigned
    fetchBlock(std::uint64_t key, const isa::Instruction *&insts,
               std::shared_ptr<const Page> &hold)
    {
        Entry *e = findEntry(key / pageWords);
        if (!e)
            return 0;
        const Page &p = *e->page;
        const std::size_t idx = key % pageWords;
        if (!p.present[idx] || !p.chainable[idx])
            return 0;
        std::uint16_t len = p.blockLen[idx];
        if (len == 0) {
            len = discoverBlock(p, idx);
            // Cache the discovery on owned pages. Shared snapshot pages
            // arrive fully precomputed (snapshotProgram), so a zero
            // there cannot happen; not writing through keeps them
            // immutable regardless.
            if (e->owned)
                e->page->blockLen[idx] = len;
        }
        if (len == noBlock)
            return 0;
#ifndef NDEBUG
        // The fetch-ahead margin audit: a block must never chain into
        // the speculative nops past real text (they are non-chainable
        // by construction, as is anything discovery walked over).
        for (unsigned k = 0; k < len; ++k)
            assert(p.present[idx + k] && p.chainable[idx + k]);
#endif
        if (hold.get() != e->page.get())
            hold = e->page;
        insts = &p.slot[idx].inst;
        return len;
    }

    /**
     * Bumped whenever a cached decode is actually dropped (a store hit
     * predecoded text, or the image was cleared). The block executor
     * samples it at block entry and after every in-block store: a
     * change means the rest of the block's decodes may be stale, so it
     * aborts back to the stepping path.
     */
    std::uint64_t generation() const { return generation_; }

    /** Drop the cached decode of one word (called on every store). */
    void
    invalidate(std::uint64_t key)
    {
        Entry *e = findEntry(key / pageWords);
        if (!e)
            return;
        const std::size_t idx = key % pageWords;
        // Nothing cached for this word: no clone, no clear. This keeps
        // ordinary data stores free even when a data word shares a page
        // with adopted text.
        if (!e->page->present[idx])
            return;
        Page &p = writablePage(*e);
        p.present[idx] = false;
        p.chainable[idx] = false;
        // Every cached block length in the page could run through the
        // invalidated word; dropping them all (recomputed lazily) keeps
        // the metadata exact without back-scanning for affected starts.
        p.blockLen.fill(0);
        ++generation_;
    }

    /** Drop everything (programs reloaded, predecode toggled). */
    void
    clear()
    {
        pages_.clear();
        lastKey_ = noPage;
        lastEntry_ = nullptr;
        lastPage_ = nullptr;
        ++generation_;
    }

  private:
    struct Entry
    {
        // Shared (adopted) pages are stored through the same pointer as
        // owned ones and distinguished by the flag; writablePage() is
        // the only mutation gate, so a shared page is never written.
        std::shared_ptr<Page> page;
        bool owned = true;
    };

    static constexpr std::uint64_t noPage = ~std::uint64_t{0};

    /** Clone-on-write: a private copy of @p e's page if it is shared. */
    Page &
    writablePage(Entry &e)
    {
        if (!e.owned) {
            // Sparse copy: snapshot pages are mostly absent slots (a
            // typical program fills a few hundred of pageWords), so
            // copying only the present decodes moves a fraction of the
            // page. SMC under a shared snapshot pays this once per
            // page per run, so short SMC-heavy programs feel it most.
            const Page &src = *e.page;
            auto p = std::make_shared<Page>();
            p->present = src.present;
            p->blockLen = src.blockLen;
            p->chainable = src.chainable;
            for (std::size_t i = 0; i < pageWords; ++i)
                if (src.present[i])
                    ::new (&p->slot[i].inst)
                        isa::Instruction(src.slot[i].inst);
            e.page = std::move(p);
            e.owned = true;
            if (&e == lastEntry_)
                lastPage_ = e.page.get();
        }
        return *e.page;
    }

    // One-entry page cache: fetch streams stay within one page for
    // long stretches, so the common case is pointer compare + index.
    // Entry pointers are stable (unordered_map never moves nodes), and
    // lastPage_ mirrors lastEntry_->page.get() so hot fetches skip the
    // Entry -> shared_ptr indirection entirely.
    Entry &
    entryFor(std::uint64_t page_key)
    {
        if (page_key == lastKey_)
            return *lastEntry_;
        auto &e = pages_[page_key];
        if (!e.page)
            e.page = std::make_shared<Page>();
        lastKey_ = page_key;
        lastEntry_ = &e;
        lastPage_ = e.page.get();
        return e;
    }

    Entry *
    findEntry(std::uint64_t page_key)
    {
        if (page_key == lastKey_)
            return lastEntry_;
        const auto it = pages_.find(page_key);
        return it == pages_.end() ? nullptr : &it->second;
    }

    /** Forward walk behind fetchBlock's cold path (and the tests). */
    static std::uint16_t discoverBlock(const Page &p, std::size_t idx);

    std::unordered_map<std::uint64_t, Entry> pages_;
    std::uint64_t lastKey_ = noPage;
    Entry *lastEntry_ = nullptr;
    Page *lastPage_ = nullptr;
    std::uint64_t generation_ = 0;
};

} // namespace mipsx::memory

#endif // MIPSX_MEMORY_DECODED_IMAGE_HH
