/**
 * @file
 * The predecoded instruction store.
 *
 * Both simulators used to re-run isa::decode() on every fetch, exactly
 * the cost the MIPS-X group avoided in their own instruction-level
 * simulator by decoding programs once up front. The DecodedImage is a
 * page-granular shadow of main memory holding one decoded Instruction
 * per word: the first fetch of a word decodes it, every later fetch is
 * an array index. Correctness with self-modifying code (and with the
 * reorganizer's store-patched jump tables) comes from one rule:
 *
 *   every MainMemory::write() invalidates the word's cached decode, so
 *   the next fetch re-decodes the new encoding.
 *
 * Pages can additionally be *shared*: snapshotProgram() predecodes a
 * program's text sections into immutable pages that adopt() installs
 * into any number of DecodedImages (the prepared-workload cache hands
 * one snapshot to every suite run, sweep point and cosim leg). Shared
 * pages are copy-on-write — the first invalidation or decode miss on a
 * shared page clones it privately — so self-modifying code in one run
 * can never leak a patched decode into another run, and the
 * invalidation rule above stays exact.
 *
 * The store is purely functional — it never affects timing. The I-cache
 * remains the timing model of instruction fetch; this is the data path.
 */

#ifndef MIPSX_MEMORY_DECODED_IMAGE_HH
#define MIPSX_MEMORY_DECODED_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/types.hh"
#include "isa/decode.hh"
#include "isa/instruction.hh"

namespace mipsx::assembler
{
struct Program;
} // namespace mipsx::assembler

namespace mipsx::memory
{

/** A decode-once cache of instruction words, keyed like MainMemory. */
class DecodedImage
{
    // The union leaves the Instruction payload uninitialized: a fresh
    // page costs one present[] clear instead of default-building
    // pageWords Instruction records, which would dominate short runs.
    union Slot
    {
        isa::Instruction inst;
        Slot() {}
    };
    static_assert(std::is_trivially_destructible_v<isa::Instruction>,
                  "Slot union skips destruction of cached decodes");

  public:
    // 2048 words (a 66 KB Page) keeps sizeof(Page) under glibc's
    // 128 KB mmap threshold, so per-run page allocations recycle
    // through the heap instead of paying mmap + first-touch faults —
    // measurably the dominant cost of short runs at 4096 words.
    static constexpr unsigned pageWords = 2048;

    struct Page
    {
        std::array<Slot, pageWords> slot;
        std::array<bool, pageWords> present{};
    };

    /**
     * Immutable predecoded pages, shared between DecodedImages by
     * shared_ptr; the map key is physKey / pageWords.
     */
    using Snapshot =
        std::unordered_map<std::uint64_t, std::shared_ptr<const Page>>;

    /**
     * Predecode every text-section word of @p prog into shareable
     * pages. Data sections are excluded on purpose: they are never
     * fetched as instructions, and leaving their pages absent keeps
     * data stores on the cheap no-page path of invalidate().
     */
    static Snapshot snapshotProgram(const assembler::Program &prog);

    /**
     * Install the pages of @p snap as shared (copy-on-write) entries.
     * Call after the program image is loaded; a later invalidate() or
     * decode miss on a shared page clones it privately first, so the
     * snapshot itself is never modified.
     */
    void adopt(const Snapshot &snap);

    /**
     * The decoded instruction for the word at @p key (a physKey).
     * @p raw is called to read the word only when no cached decode
     * exists, so a hit touches neither main memory nor the decoder.
     */
    template <typename RawFn>
    const isa::Instruction &
    fetch(std::uint64_t key, RawFn &&raw)
    {
        // Hot path reads through lastPage_ (a raw Page*) so a hit costs
        // the same one dependent load it did before pages could be
        // shared; entryFor()/writablePage() keep the pointer current.
        Entry &e = entryFor(key / pageWords);
        const std::size_t idx = key % pageWords;
        if (!lastPage_->present[idx]) {
            Page &p = writablePage(e);
            ::new (&p.slot[idx].inst) isa::Instruction(isa::decode(raw()));
            p.present[idx] = true;
            return p.slot[idx].inst;
        }
        return lastPage_->slot[idx].inst;
    }

    /** Drop the cached decode of one word (called on every store). */
    void
    invalidate(std::uint64_t key)
    {
        Entry *e = findEntry(key / pageWords);
        if (!e)
            return;
        const std::size_t idx = key % pageWords;
        // Nothing cached for this word: no clone, no clear. This keeps
        // ordinary data stores free even when a data word shares a page
        // with adopted text.
        if (!e->page->present[idx])
            return;
        writablePage(*e).present[idx] = false;
    }

    /** Drop everything (programs reloaded, predecode toggled). */
    void
    clear()
    {
        pages_.clear();
        lastKey_ = noPage;
        lastEntry_ = nullptr;
        lastPage_ = nullptr;
    }

  private:
    struct Entry
    {
        // Shared (adopted) pages are stored through the same pointer as
        // owned ones and distinguished by the flag; writablePage() is
        // the only mutation gate, so a shared page is never written.
        std::shared_ptr<Page> page;
        bool owned = true;
    };

    static constexpr std::uint64_t noPage = ~std::uint64_t{0};

    /** Clone-on-write: a private copy of @p e's page if it is shared. */
    Page &
    writablePage(Entry &e)
    {
        if (!e.owned) {
            // Sparse copy: snapshot pages are mostly absent slots (a
            // typical program fills a few hundred of pageWords), so
            // copying only the present decodes moves a fraction of the
            // page. SMC under a shared snapshot pays this once per
            // page per run, so short SMC-heavy programs feel it most.
            const Page &src = *e.page;
            auto p = std::make_shared<Page>();
            p->present = src.present;
            for (std::size_t i = 0; i < pageWords; ++i)
                if (src.present[i])
                    ::new (&p->slot[i].inst)
                        isa::Instruction(src.slot[i].inst);
            e.page = std::move(p);
            e.owned = true;
            if (&e == lastEntry_)
                lastPage_ = e.page.get();
        }
        return *e.page;
    }

    // One-entry page cache: fetch streams stay within one page for
    // long stretches, so the common case is pointer compare + index.
    // Entry pointers are stable (unordered_map never moves nodes), and
    // lastPage_ mirrors lastEntry_->page.get() so hot fetches skip the
    // Entry -> shared_ptr indirection entirely.
    Entry &
    entryFor(std::uint64_t page_key)
    {
        if (page_key == lastKey_)
            return *lastEntry_;
        auto &e = pages_[page_key];
        if (!e.page)
            e.page = std::make_shared<Page>();
        lastKey_ = page_key;
        lastEntry_ = &e;
        lastPage_ = e.page.get();
        return e;
    }

    Entry *
    findEntry(std::uint64_t page_key)
    {
        if (page_key == lastKey_)
            return lastEntry_;
        const auto it = pages_.find(page_key);
        return it == pages_.end() ? nullptr : &it->second;
    }

    std::unordered_map<std::uint64_t, Entry> pages_;
    std::uint64_t lastKey_ = noPage;
    Entry *lastEntry_ = nullptr;
    Page *lastPage_ = nullptr;
};

} // namespace mipsx::memory

#endif // MIPSX_MEMORY_DECODED_IMAGE_HH
