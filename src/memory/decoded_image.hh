/**
 * @file
 * The predecoded instruction store.
 *
 * Both simulators used to re-run isa::decode() on every fetch, exactly
 * the cost the MIPS-X group avoided in their own instruction-level
 * simulator by decoding programs once up front. The DecodedImage is a
 * page-granular shadow of main memory holding one decoded Instruction
 * per word: the first fetch of a word decodes it, every later fetch is
 * an array index. Correctness with self-modifying code (and with the
 * reorganizer's store-patched jump tables) comes from one rule:
 *
 *   every MainMemory::write() invalidates the word's cached decode, so
 *   the next fetch re-decodes the new encoding.
 *
 * The store is purely functional — it never affects timing. The I-cache
 * remains the timing model of instruction fetch; this is the data path.
 */

#ifndef MIPSX_MEMORY_DECODED_IMAGE_HH
#define MIPSX_MEMORY_DECODED_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/types.hh"
#include "isa/decode.hh"
#include "isa/instruction.hh"

namespace mipsx::memory
{

/** A decode-once cache of instruction words, keyed like MainMemory. */
class DecodedImage
{
  public:
    static constexpr unsigned pageWords = 4096;

    /**
     * The decoded instruction for the word at @p key (a physKey).
     * @p raw is called to read the word only when no cached decode
     * exists, so a hit touches neither main memory nor the decoder.
     */
    template <typename RawFn>
    const isa::Instruction &
    fetch(std::uint64_t key, RawFn &&raw)
    {
        Page &p = pageFor(key / pageWords);
        const std::size_t idx = key % pageWords;
        if (!p.present[idx]) {
            ::new (&p.slot[idx].inst) isa::Instruction(isa::decode(raw()));
            p.present[idx] = true;
        }
        return p.slot[idx].inst;
    }

    /** Drop the cached decode of one word (called on every store). */
    void
    invalidate(std::uint64_t key)
    {
        if (Page *p = findPage(key / pageWords))
            p->present[key % pageWords] = false;
    }

    /** Drop everything (programs reloaded, predecode toggled). */
    void
    clear()
    {
        pages_.clear();
        lastKey_ = noPage;
        lastPage_ = nullptr;
    }

  private:
    // The union leaves the Instruction payload uninitialized: a fresh
    // page costs one 4 KiB present[] clear instead of default-building
    // 4096 Instruction records, which would dominate short runs.
    union Slot
    {
        isa::Instruction inst;
        Slot() {}
    };
    static_assert(std::is_trivially_destructible_v<isa::Instruction>,
                  "Slot union skips destruction of cached decodes");

    struct Page
    {
        std::array<Slot, pageWords> slot;
        std::array<bool, pageWords> present{};
    };

    static constexpr std::uint64_t noPage = ~std::uint64_t{0};

    // One-entry page cache: fetch streams stay within a 4096-word page
    // for long runs, so the common case is pointer compare + index.
    Page &
    pageFor(std::uint64_t page_key)
    {
        if (page_key == lastKey_)
            return *lastPage_;
        auto &p = pages_[page_key];
        if (!p)
            p = std::make_unique<Page>();
        lastKey_ = page_key;
        lastPage_ = p.get();
        return *p;
    }

    Page *
    findPage(std::uint64_t page_key)
    {
        if (page_key == lastKey_)
            return lastPage_;
        const auto it = pages_.find(page_key);
        return it == pages_.end() ? nullptr : it->second.get();
    }

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
    std::uint64_t lastKey_ = noPage;
    Page *lastPage_ = nullptr;
};

} // namespace mipsx::memory

#endif // MIPSX_MEMORY_DECODED_IMAGE_HH
