/**
 * @file
 * Sparse word-addressed main memory with the two MIPS-X address spaces
 * (system and user).
 *
 * The caches in this model are *timing-only*: data always lives here and
 * the caches track tags/valid bits purely to compute stall cycles. This is
 * exactly the methodology of the paper's own trace-driven studies and it
 * keeps functional behaviour independent of the memory hierarchy
 * configuration.
 */

#ifndef MIPSX_MEMORY_MAIN_MEMORY_HH
#define MIPSX_MEMORY_MAIN_MEMORY_HH

#include <array>
#include <map>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "assembler/program.hh"
#include "common/types.hh"
#include "memory/decoded_image.hh"

namespace mipsx::memory
{

/**
 * Combine an address space and a word address into one key. The caches
 * also use this so that system and user lines never alias.
 */
constexpr std::uint64_t
physKey(AddressSpace space, addr_t addr)
{
    return (static_cast<std::uint64_t>(space) << 32) | addr;
}

/** Page-granular sparse memory. Unwritten words read as zero. */
class MainMemory
{
  public:
    static constexpr unsigned pageWords = 4096;

    word_t
    read(AddressSpace space, addr_t addr) const
    {
        const auto it = pages_.find(pageOf(space, addr));
        if (it == pages_.end())
            return 0;
        return (*it->second)[addr % pageWords];
    }

    void
    write(AddressSpace space, addr_t addr, word_t value)
    {
        page(space, addr)[addr % pageWords] = value;
        // Keep the predecoded image exact under self-modifying code:
        // the next fetch of this word re-decodes the new encoding.
        decoded_.invalidate(physKey(space, addr));
    }

    /**
     * The decoded instruction at @p addr. With predecode enabled (the
     * default) the hot path is an index into the DecodedImage; disabled
     * (perf baselines) it decodes the word on every call, the pre-fast-
     * path behaviour. Either way the result equals decode(read(addr)).
     */
    const isa::Instruction &
    fetchDecoded(AddressSpace space, addr_t addr)
    {
        if (!predecode_) {
            scratch_ = isa::decode(read(space, addr));
            return scratch_;
        }
        return decoded_.fetch(physKey(space, addr),
                              [&] { return read(space, addr); });
    }

    /**
     * The superblock starting at @p addr (see DecodedImage::fetchBlock).
     * Returns 0 — "single-step instead" — when predecode is disabled:
     * without the decode-once store there is no cached straight-line
     * run to execute from.
     */
    unsigned
    fetchBlock(AddressSpace space, addr_t addr,
               const isa::Instruction *&insts,
               std::shared_ptr<const DecodedImage::Page> &hold)
    {
        if (!predecode_)
            return 0;
        return decoded_.fetchBlock(physKey(space, addr), insts, hold);
    }

    /** The decode-invalidation generation (DecodedImage::generation). */
    std::uint64_t decodeGeneration() const { return decoded_.generation(); }

    /** Toggle the predecode fast path (drops all cached decodes). */
    void
    setPredecodeEnabled(bool on)
    {
        predecode_ = on;
        decoded_.clear();
    }
    bool predecodeEnabled() const { return predecode_; }

    /**
     * Load every section of @p prog at its base address. With
     * predecode enabled, the text is decoded up front: from scratch
     * when @p decoded is null, or — the prepared-workload fast path —
     * by adopting @p decoded's shared copy-on-write pages, which skips
     * the per-load decode pass entirely. @p decoded must be a snapshot
     * of exactly @p prog (DecodedImage::snapshotProgram).
     */
    void loadProgram(const assembler::Program &prog,
                     const DecodedImage::Snapshot *decoded = nullptr);

    /** Number of resident pages (for tests). */
    std::size_t residentPages() const { return pages_.size(); }

    /**
     * A deep copy of the memory image (pages + predecode flag) with an
     * *empty* decode store. The interval planner snapshots its planning
     * machine's memory at every checkpoint this way; dropping the
     * cached decodes keeps the copy trivially exact under
     * self-modifying code (the seeded run re-decodes lazily, the same
     * rule as a cold start), and avoids sharing the DecodedImage's
     * internal page cache across threads.
     */
    MainMemory
    cloneImage() const
    {
        MainMemory out;
        out.predecode_ = predecode_;
        out.pages_.reserve(pages_.size());
        for (const auto &[key, page] : pages_)
            out.pages_.emplace(key, std::make_unique<Page>(*page));
        return out;
    }

    /**
     * All non-zero words as a sorted (physKey -> value) map. Used by the
     * co-simulation checker to compare final memory states.
     */
    std::map<std::uint64_t, word_t>
    snapshot() const
    {
        std::map<std::uint64_t, word_t> out;
        for (const auto &[page_key, page] : pages_) {
            for (unsigned i = 0; i < pageWords; ++i) {
                if ((*page)[i] != 0)
                    out[page_key * pageWords + i] = (*page)[i];
            }
        }
        return out;
    }

  private:
    using Page = std::array<word_t, pageWords>;

    static std::uint64_t
    pageOf(AddressSpace space, addr_t addr)
    {
        return physKey(space, addr) / pageWords;
    }

    Page &
    page(AddressSpace space, addr_t addr)
    {
        auto &p = pages_[pageOf(space, addr)];
        if (!p)
            p = std::make_unique<Page>(Page{});
        return *p;
    }

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
    DecodedImage decoded_;
    bool predecode_ = true;
    isa::Instruction scratch_; ///< result slot for the disabled path
};

} // namespace mipsx::memory

#endif // MIPSX_MEMORY_MAIN_MEMORY_HH
