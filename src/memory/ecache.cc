#include "memory/ecache.hh"

#include "common/bitfield.hh"
#include "common/sim_error.hh"

namespace mipsx::memory
{

void
ECacheConfig::validate() const
{
    if (!isPowerOf2(sizeWords) || !isPowerOf2(lineWords))
        fatal("ECache: size and line must be powers of two");
    if (ways == 0 || sizeWords % (lineWords * ways) != 0)
        fatal("ECache: ways must divide size/line");
}

ECache::ECache(const ECacheConfig &config) : config_(config)
{
    config_.validate();
    numSets_ = config_.sizeWords / (config_.lineWords * config_.ways);
    lineShift_ = log2i(config_.lineWords);
    setsArePow2_ = isPowerOf2(numSets_);
    if (setsArePow2_)
        setShift_ = log2i(numSets_);
    numLines_ = static_cast<std::size_t>(numSets_) * config_.ways;
    lines_.reset(static_cast<Line *>(std::calloc(numLines_, sizeof(Line))));
    if (!lines_)
        fatal("ECache: line array allocation failed");
}

void
ECache::reset()
{
    // Bumping the epoch invalidates every line in O(1); stale lastUse
    // and dirty bits are never read because lineValid() gates them.
    if (++epoch_ == 0) {
        for (std::size_t i = 0; i < numLines_; ++i)
            lines_[i] = Line{};
        epoch_ = 1;
    }
    useClock_ = 0;
}

void
ECache::clearStats()
{
    accesses_.reset();
    misses_.reset();
    writebacks_.reset();
    stallCycles_.reset();
}

bool
ECache::invalidateWord(std::uint64_t key)
{
    if (!config_.enabled)
        return false;
    std::uint64_t set, tag;
    splitKey(key, set, tag);
    Line *base = &lines_[set * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &l = base[w];
        if (lineValid(l) && l.tag == tag) {
            l.epoch = 0;
            l.dirty = false;
            ++invalidationsReceived_;
            return true;
        }
    }
    return false;
}

ECacheResult
ECache::access(std::uint64_t key, bool is_write)
{
    ++accesses_;
    ++useClock_;

    if (!config_.enabled) {
        ++misses_;
        stallCycles_ += config_.missPenalty;
        memTraffic_ += config_.missPenalty;
        return {false, config_.missPenalty, config_.missPenalty};
    }

    std::uint64_t set, tag;
    splitKey(key, set, tag);
    Line *base = &lines_[set * config_.ways];

    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &l = base[w];
        if (lineValid(l) && l.tag == tag) {
            l.lastUse = useClock_;
            if (is_write) {
                if (config_.writeThrough) {
                    // Buffered store: no processor stall, but the word
                    // crosses the bus to main memory.
                    memTraffic_ += config_.writeBusCycles;
                    return {true, 0, config_.writeBusCycles};
                }
                l.dirty = true;
            }
            return {true, 0, 0};
        }
    }

    // Miss.
    ++misses_;
    if (is_write && config_.writeThrough) {
        // No-write-allocate: the store goes straight through.
        memTraffic_ += config_.writeBusCycles;
        return {false, 0, config_.writeBusCycles};
    }
    // Pick the LRU victim and charge the late-miss retry loop.
    // Prefer an invalid way; otherwise evict the least recently used.
    Line *victim = base;
    for (unsigned w = 1; w < config_.ways; ++w) {
        if (!lineValid(*victim))
            break;
        if (!lineValid(base[w]) || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    unsigned stall = config_.missPenalty;
    if (lineValid(*victim) && victim->dirty) {
        ++writebacks_;
        stall += config_.writebackPenalty;
    }
    victim->epoch = epoch_;
    victim->dirty = is_write && !config_.writeThrough;
    victim->tag = tag;
    victim->lastUse = useClock_;
    if (is_write && config_.writeThrough)
        memTraffic_ += config_.writeBusCycles;

    stallCycles_ += stall;
    memTraffic_ += stall;
    return {false, stall, stall};
}

} // namespace mipsx::memory
