#include "memory/ecache.hh"

#include "common/bitfield.hh"
#include "common/sim_error.hh"

namespace mipsx::memory
{

ECache::ECache(const ECacheConfig &config) : config_(config)
{
    if (!isPowerOf2(config_.sizeWords) || !isPowerOf2(config_.lineWords))
        fatal("ECache: size and line must be powers of two");
    if (config_.ways == 0 ||
        config_.sizeWords % (config_.lineWords * config_.ways) != 0) {
        fatal("ECache: ways must divide size/line");
    }
    numSets_ = config_.sizeWords / (config_.lineWords * config_.ways);
    lines_.assign(static_cast<std::size_t>(numSets_) * config_.ways, {});
}

void
ECache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    useClock_ = 0;
}

void
ECache::clearStats()
{
    accesses_.reset();
    misses_.reset();
    writebacks_.reset();
    stallCycles_.reset();
}

bool
ECache::invalidateWord(std::uint64_t key)
{
    if (!config_.enabled)
        return false;
    const std::uint64_t line_addr = key / config_.lineWords;
    const std::uint64_t set = line_addr % numSets_;
    const std::uint64_t tag = line_addr / numSets_;
    Line *base = &lines_[set * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.valid = false;
            l.dirty = false;
            ++invalidationsReceived_;
            return true;
        }
    }
    return false;
}

ECacheResult
ECache::access(std::uint64_t key, bool is_write)
{
    ++accesses_;
    ++useClock_;

    if (!config_.enabled) {
        ++misses_;
        stallCycles_ += config_.missPenalty;
        memTraffic_ += config_.missPenalty;
        return {false, config_.missPenalty, config_.missPenalty};
    }

    const std::uint64_t line_addr = key / config_.lineWords;
    const std::uint64_t set = line_addr % numSets_;
    const std::uint64_t tag = line_addr / numSets_;
    Line *base = &lines_[set * config_.ways];

    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = useClock_;
            if (is_write) {
                if (config_.writeThrough) {
                    // Buffered store: no processor stall, but the word
                    // crosses the bus to main memory.
                    memTraffic_ += config_.writeBusCycles;
                    return {true, 0, config_.writeBusCycles};
                }
                l.dirty = true;
            }
            return {true, 0, 0};
        }
    }

    // Miss.
    ++misses_;
    if (is_write && config_.writeThrough) {
        // No-write-allocate: the store goes straight through.
        memTraffic_ += config_.writeBusCycles;
        return {false, 0, config_.writeBusCycles};
    }
    // Pick the LRU victim and charge the late-miss retry loop.
    // Prefer an invalid way; otherwise evict the least recently used.
    Line *victim = base;
    for (unsigned w = 1; w < config_.ways; ++w) {
        if (!victim->valid)
            break;
        if (!base[w].valid || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    unsigned stall = config_.missPenalty;
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        stall += config_.writebackPenalty;
    }
    victim->valid = true;
    victim->dirty = is_write && !config_.writeThrough;
    victim->tag = tag;
    victim->lastUse = useClock_;
    if (is_write && config_.writeThrough)
        memTraffic_ += config_.writeBusCycles;

    stallCycles_ += stall;
    memTraffic_ += stall;
    return {false, stall, stall};
}

} // namespace mipsx::memory
