/**
 * @file
 * The external cache (Ecache).
 *
 * MIPS-X backs its on-chip instruction cache and all data references with
 * a large 64K-word external cache that talks to main memory over a shared
 * bus. The paper's key timing property is the *late miss*: the Ecache
 * reports hit/miss only at the beginning of the following WB cycle, and on
 * a miss the processor "effectively goes back and re-executes phase 2 of
 * MEM" until the data arrives — i.e. the whole pipeline stalls for the
 * miss service time (implemented in hardware by withholding the qualified
 * w1 clock).
 *
 * This model is timing-only (see main_memory.hh): it tracks tags and dirty
 * bits and returns the stall cycles each access costs.
 */

#ifndef MIPSX_MEMORY_ECACHE_HH
#define MIPSX_MEMORY_ECACHE_HH

#include <cstdint>
#include <cstdlib>
#include <memory>

#include "common/types.hh"
#include "stats/stats.hh"

namespace mipsx::memory
{

/** Ecache configuration. Defaults follow the paper's 64K-word cache. */
struct ECacheConfig
{
    unsigned sizeWords = 64 * 1024;
    unsigned lineWords = 4;
    unsigned ways = 1; ///< direct-mapped by default
    /**
     * Cycles the pipeline re-executes phase 2 of MEM while main memory
     * services a miss (shared-bus access).
     */
    unsigned missPenalty = 16;
    /** Extra cycles to copy a dirty victim back over the shared bus. */
    unsigned writebackPenalty = 4;
    /**
     * Write policy. Copy-back (the default) dirties lines and pays a
     * writeback when a dirty victim is evicted. Write-through sends
     * every store to main memory; a store buffer hides the latency from
     * the processor ("a buffer with capacity of four provided most of
     * the performance improvement" — Smith 1982, which the paper cites),
     * but the bus still carries every word, the tradeoff that matters
     * for the multiprocessor.
     */
    bool writeThrough = false;
    /** Bus occupancy of one buffered write-through store. */
    unsigned writeBusCycles = 2;
    /** If false, every access misses (for no-Ecache ablations). */
    bool enabled = true;

    /** Reject ill-formed geometries with a SimError (see ICacheConfig). */
    void validate() const;
};

/** Result of one Ecache access. */
struct ECacheResult
{
    bool hit = true;
    unsigned stallCycles = 0; ///< cycles the processor must wait
    /**
     * Shared-bus occupancy this access generates beyond stallCycles
     * (buffered write-through stores occupy the bus without stalling
     * the issuing processor).
     */
    unsigned busCycles = 0;
};

/** A set-associative, copy-back, write-allocate external cache model. */
class ECache
{
  public:
    explicit ECache(const ECacheConfig &config = {});

    /**
     * Access one word.
     *
     * @param key physKey(space, addr) of the referenced word.
     * @param is_write true for stores.
     * @return hit flag and the stall cycles this access costs.
     */
    ECacheResult access(std::uint64_t key, bool is_write);

    /** Invalidate everything (e.g. between benchmark runs). */
    void reset();

    /**
     * Snooping invalidation: drop the line containing @p key if
     * present. Returns true if a line was invalidated.
     */
    bool invalidateWord(std::uint64_t key);

    std::uint64_t invalidationsReceived() const
    {
        return invalidationsReceived_.value();
    }

    const ECacheConfig &config() const { return config_; }

    // Statistics.
    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    /** Words sent to main memory (stores + writebacks + fills). */
    std::uint64_t memoryTrafficCycles() const
    {
        return memTraffic_.value();
    }
    std::uint64_t stallCycles() const { return stallCycles_.value(); }
    double missRatio() const { return stats::ratio(misses_, accesses_); }
    void clearStats();

  private:
    /**
     * Kept trivial (no default member initializers) so the line array
     * can come from calloc: the all-zero state (epoch 0 against an
     * epoch_ that starts at 1) is "invalid", and the OS hands out
     * zero pages lazily, so a 64K-word cache costs only the lines a
     * workload actually touches.
     */
    struct Line
    {
        /** Valid iff equal to the cache's current epoch_. */
        std::uint32_t epoch;
        bool dirty;
        std::uint64_t tag;
        std::uint64_t lastUse; ///< LRU timestamp
    };

    bool lineValid(const Line &l) const { return l.epoch == epoch_; }

    /** Split @p key into the line's set index and tag. */
    void
    splitKey(std::uint64_t key, std::uint64_t &set, std::uint64_t &tag) const
    {
        const std::uint64_t line_addr = key >> lineShift_;
        if (setsArePow2_) {
            set = line_addr & (numSets_ - 1);
            tag = line_addr >> setShift_;
        } else {
            set = line_addr % numSets_;
            tag = line_addr / numSets_;
        }
    }

    unsigned numSets_ = 0;
    // lineWords is an enforced power of two; numSets_ is only a power of
    // two when ways happens to make it one, so the set split falls back
    // to divide/modulo in that case.
    unsigned lineShift_ = 0;
    bool setsArePow2_ = false;
    unsigned setShift_ = 0;
    ECacheConfig config_;
    struct FreeDeleter
    {
        void operator()(Line *p) const { std::free(p); }
    };
    /** numSets_ x ways, row-major. */
    std::unique_ptr<Line[], FreeDeleter> lines_;
    std::size_t numLines_ = 0;
    std::uint32_t epoch_ = 1; ///< calloc'd lines are 0: all invalid
    std::uint64_t useClock_ = 0;

    stats::Counter accesses_;
    stats::Counter misses_;
    stats::Counter writebacks_;
    stats::Counter stallCycles_;
    stats::Counter invalidationsReceived_;
    stats::Counter memTraffic_;
};

} // namespace mipsx::memory

#endif // MIPSX_MEMORY_ECACHE_HH
