/**
 * @file
 * The shared memory bus and snooping coherence hub for the MIPS-X
 * multiprocessor.
 *
 * The paper's system goal: "to use 6-10 of these processors as the nodes
 * in a shared memory multiprocessor. The resulting machine would be
 * about two orders of magnitude more powerful than a VAX 11/780." The
 * single-chip paper stops there; this module supplies the missing
 * substrate the project planned around:
 *
 *  - a single shared bus between the per-processor Ecaches and main
 *    memory: concurrent misses serialize, and the arbiter charges each
 *    requester the cycles it waits for the bus;
 *  - invalidate-on-write snooping between the (timing-only) Ecaches —
 *    the classic scheme of the Smith survey the paper cites — so shared
 *    data costs re-fetches the way it would in hardware.
 */

#ifndef MIPSX_MEMORY_BUS_HH
#define MIPSX_MEMORY_BUS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "memory/ecache.hh"
#include "stats/stats.hh"

namespace mipsx::memory
{

/** First-come-first-served arbiter for the shared memory bus. */
class BusArbiter
{
  public:
    /**
     * Request the bus at time @p now for @p duration cycles.
     * @return the extra cycles spent waiting for the bus to free.
     */
    unsigned
    acquire(cycle_t now, unsigned duration)
    {
        const cycle_t start = now > busyUntil_ ? now : busyUntil_;
        const unsigned wait = static_cast<unsigned>(start - now);
        busyUntil_ = start + duration;
        ++transactions_;
        waitCycles_ += wait;
        busyCycles_ += duration;
        return wait;
    }

    std::uint64_t transactions() const { return transactions_.value(); }
    std::uint64_t waitCycles() const { return waitCycles_.value(); }
    std::uint64_t busyCycles() const { return busyCycles_.value(); }

    void
    reset()
    {
        busyUntil_ = 0;
        transactions_.reset();
        waitCycles_.reset();
        busyCycles_.reset();
    }

  private:
    cycle_t busyUntil_ = 0;
    stats::Counter transactions_;
    stats::Counter waitCycles_;
    stats::Counter busyCycles_;
};

/** Write-invalidate snooping between the attached Ecaches. */
class CoherenceHub
{
  public:
    void attach(ECache *cache) { caches_.push_back(cache); }

    /** CPU owning @p writer stored to @p key: invalidate other copies. */
    void
    writeBroadcast(const ECache *writer, std::uint64_t key)
    {
        for (ECache *c : caches_) {
            if (c != writer && c->invalidateWord(key))
                ++invalidations_;
        }
    }

    std::uint64_t invalidations() const { return invalidations_.value(); }

  private:
    std::vector<ECache *> caches_;
    stats::Counter invalidations_;
};

} // namespace mipsx::memory

#endif // MIPSX_MEMORY_BUS_HH
