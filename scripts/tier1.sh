#!/usr/bin/env bash
# Tier-1 verification: the default build plus the full test suite, then
# smoke runs of every CLI tool (trace/metrics export, an explore sweep
# plus its shard/merge byte-identity, a fuzz session, a serve batch +
# load-generator bench — each checked for worker-count determinism, and
# the mipsx-trend exit-code contract), malformed-flag usage-error checks
# for all five tools, then the parallel-determinism test again under
# ThreadSanitizer so data races in the suite runner cannot slip through.
#
# This script is the single entry point CI calls (.github/workflows),
# so local and CI verification cannot drift. Knobs, all via env:
#   MIPSX_BUILD_TYPE    CMake build type (default RelWithDebInfo)
#   MIPSX_CMAKE_FLAGS   extra -D flags for the main build
#   MIPSX_SKIP_TSAN=1   skip the ThreadSanitizer stage (the sanitizer
#                       CI jobs build with ASan/UBSan, which cannot be
#                       combined with TSan in one process)
#
# Usage: scripts/tier1.sh [build-dir]
set -euo pipefail

repo=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
build_type=${MIPSX_BUILD_TYPE:-RelWithDebInfo}

echo "== tier-1: build + ctest ($build, $build_type) =="
# shellcheck disable=SC2086  # MIPSX_CMAKE_FLAGS is intentionally split
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE="$build_type" \
    ${MIPSX_CMAKE_FLAGS:-}
cmake --build "$build" -j
(cd "$build" && ctest --output-on-failure -j)

echo "== tier-1: trace/metrics smoke run =="
# A traced run of a real program must produce parseable JSON on both
# exporter paths (Chrome trace-event file and flat metrics file).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
"$build/tools/mipsx-run" --trace=64 --trace-out="$smoke/trace.json" \
    --metrics-json="$smoke/metrics.json" "$repo/examples/asm/sumarray.s"
python3 - "$smoke/trace.json" "$smoke/metrics.json" << 'PYEOF'
import json, sys
trace = json.load(open(sys.argv[1]))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "empty traceEvents"
assert any(e.get("ph") == "i" for e in trace["traceEvents"])
metrics = json.load(open(sys.argv[2]))
assert metrics["cpu0.pipeline.cycles"] > 0
assert metrics["cpu0.pipeline.instructions"] > 0
print("trace/metrics smoke OK: %d events, %d metrics"
      % (len(trace["traceEvents"]), len(metrics)))
PYEOF

echo "== tier-1: mipsx-explore sweep smoke run =="
# A tiny 2x2 sweep must emit a well-formed long-form CSV and schema-
# tagged JSON, bit-identically at different worker counts.
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 1 --csv "$smoke/sweep1.csv" --json "$smoke/sweep1.json"
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 4 --csv "$smoke/sweep4.csv" --json "$smoke/sweep4.json"
cmp "$smoke/sweep1.csv" "$smoke/sweep4.csv"
cmp "$smoke/sweep1.json" "$smoke/sweep4.json"
python3 - "$smoke/sweep1.csv" "$smoke/sweep1.json" << 'PYEOF'
import json, sys
header = open(sys.argv[1]).readline().rstrip("\n")
assert header == "point,icache.missPenalty,icache.fetchWords,metric,value", \
    "bad CSV header: %r" % header
sweep = json.load(open(sys.argv[2]))
assert sweep["schema"] == "mipsx-explore-v2"
assert [a["param"] for a in sweep["grid"]["axes"]] == \
    ["icache.missPenalty", "icache.fetchWords"]
assert len(sweep["points"]) == 4
for p in sweep["points"]:
    assert p["failures"] == []
    assert p["metrics"]["suite.cpi"] > 0
    assert p["metrics"]["energy.total"] > 0
print("explore sweep smoke OK: %d points, %d metrics each"
      % (len(sweep["points"]), len(sweep["points"][0]["metrics"])))
PYEOF

echo "== tier-1: shard/merge byte-identity smoke run =="
# The same sweep split into two shards and merged back must reproduce
# the unsharded CSV and JSON byte for byte.
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 2 --shard 0/2 --json "$smoke/shard0.json"
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 2 --shard 1/2 --json "$smoke/shard1.json"
"$build/tools/mipsx-explore" --quiet \
    --merge "$smoke/shard1.json" "$smoke/shard0.json" \
    --csv "$smoke/merged.csv" --json "$smoke/merged.json"
cmp "$smoke/sweep1.csv" "$smoke/merged.csv"
cmp "$smoke/sweep1.json" "$smoke/merged.json"
echo "shard/merge smoke OK: merged output byte-identical to unsharded"

echo "== tier-1: prepared-cache determinism smoke run =="
# The same sweep with the prepared-image cache bypassed must emit
# byte-identical CSV/JSON: the cache may only change when toolchain
# work happens, never any output.
"$build/tools/mipsx-explore" --quiet --suite fp --no-cache \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 4 --csv "$smoke/sweep-nocache.csv" \
    --json "$smoke/sweep-nocache.json"
cmp "$smoke/sweep1.csv" "$smoke/sweep-nocache.csv"
cmp "$smoke/sweep1.json" "$smoke/sweep-nocache.json"
echo "prepared-cache determinism smoke OK"

echo "== tier-1: scheduler-sweep smoke run =="
# The reorganizer's scheduling backends swept against the branch scheme
# must run the suite clean and bit-identically at different worker
# counts (schedules are deterministic and carry no host-dependent data).
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis reorg.scheduler=heuristic,optimal \
    --axis branch.scheme=no-squash,squash-optional \
    --jobs 1 --csv "$smoke/sched1.csv" --json "$smoke/sched1.json"
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis reorg.scheduler=heuristic,optimal \
    --axis branch.scheme=no-squash,squash-optional \
    --jobs 4 --csv "$smoke/sched4.csv" --json "$smoke/sched4.json"
cmp "$smoke/sched1.csv" "$smoke/sched4.csv"
cmp "$smoke/sched1.json" "$smoke/sched4.json"
python3 - "$smoke/sched1.json" << 'PYEOF'
import json, sys
sweep = json.load(open(sys.argv[1]))
assert [a["param"] for a in sweep["grid"]["axes"]] == \
    ["reorg.scheduler", "branch.scheme"]
assert len(sweep["points"]) == 4
for p in sweep["points"]:
    assert p["failures"] == []
    assert p["metrics"]["suite.cpi"] > 0
print("scheduler sweep smoke OK: %d points, --jobs 1/4 byte-identical"
      % len(sweep["points"]))
PYEOF

echo "== tier-1: scheduler semantics gate (fourth fuzz leg) =="
# Every scheduling backend (heuristic, list, optimal) must preserve
# the semantics of 200 random sequential programs, byte-identically at
# any worker count.
mkdir "$smoke/sched-fuzz1" "$smoke/sched-fuzz4"
(cd "$smoke/sched-fuzz1" && MIPSX_BENCH_JOBS=1 "$build/tools/mipsx-fuzz" \
    --seed 2027 --runs 200 --sched-check \
    --metrics fuzz-metrics.json > fuzz.log)
(cd "$smoke/sched-fuzz4" && MIPSX_BENCH_JOBS=4 "$build/tools/mipsx-fuzz" \
    --seed 2027 --runs 200 --sched-check \
    --metrics fuzz-metrics.json > fuzz.log)
diff -r "$smoke/sched-fuzz1" "$smoke/sched-fuzz4"
python3 - "$smoke/sched-fuzz1/fuzz-metrics.json" << 'PYEOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["fuzz.sched_checks"] == 200
assert m["fuzz.sched_matches"] == 200, "sched-check mismatches: %r" % m
assert m["fuzz.divergences"] == 0
print("sched-check smoke OK: %d programs preserved by every backend"
      % m["fuzz.sched_checks"])
PYEOF

# Persist the smoke outputs so CI can upload them next to the BENCH
# artifacts (and a human can diff sweeps across revisions).
mkdir -p "$build/tier1-artifacts"
cp "$smoke/sweep1.csv" "$smoke/sweep1.json" \
   "$smoke/sweep-nocache.csv" "$smoke/sweep-nocache.json" \
   "$smoke/sched1.csv" "$smoke/sched1.json" \
   "$build/tier1-artifacts/"

echo "== tier-1: mipsx-fuzz determinism smoke run =="
# A short fuzz session must pass clean (any divergence is a real bug:
# the exit status is nonzero) and reproduce byte-identically at
# different worker counts — .repro files, metrics and logs alike.
mkdir "$smoke/fuzz1" "$smoke/fuzz4"
(cd "$smoke/fuzz1" && MIPSX_BENCH_JOBS=1 "$build/tools/mipsx-fuzz" \
    --seed 2026 --runs 300 --metrics fuzz-metrics.json > fuzz.log)
(cd "$smoke/fuzz4" && MIPSX_BENCH_JOBS=4 "$build/tools/mipsx-fuzz" \
    --seed 2026 --runs 300 --metrics fuzz-metrics.json > fuzz.log)
diff -r "$smoke/fuzz1" "$smoke/fuzz4"
python3 - "$smoke/fuzz1/fuzz-metrics.json" << 'PYEOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["fuzz.programs"] == 300
assert m["fuzz.divergences"] == 0, "fuzz divergences: %r" % m
assert m["fuzz.retires"] > 0
print("fuzz smoke OK: %d programs, %d retires compared"
      % (m["fuzz.programs"], m["fuzz.retires"]))
PYEOF

echo "== tier-1: superblock ISS cosim leg smoke run =="
# The same session with the block-mode ISS added as a third cosim leg
# (--iss-mode both) must pass clean and produce byte-identical outputs
# to the step-only session: the superblock engine may only change how
# fast the ISS answers, never any answer.
mkdir "$smoke/fuzz-both"
(cd "$smoke/fuzz-both" && MIPSX_BENCH_JOBS=4 "$build/tools/mipsx-fuzz" \
    --seed 2026 --runs 300 --iss-mode both \
    --metrics fuzz-metrics.json > fuzz.log)
diff -r "$smoke/fuzz4" "$smoke/fuzz-both"
echo "superblock cosim smoke OK: both-mode session byte-identical"

echo "== tier-1: malformed-flag usage errors =="
# Every tool must reject malformed numeric flags with a clean usage
# error on stderr and exit status 2 — never an uncaught exception
# (which would abort) and never the run-failure status 1.
expect_usage() {
    local rc=0
    "$@" > /dev/null 2> "$smoke/usage.err" || rc=$?
    if [ "$rc" != 2 ]; then
        echo "expected exit 2 from: $*  (got $rc)" >&2
        cat "$smoke/usage.err" >&2
        exit 1
    fi
}
expect_usage "$build/tools/mipsx-run" --trace=abc /dev/null
expect_usage "$build/tools/mipsx-run" --max-cycles 0 /dev/null
expect_usage "$build/tools/mipsx-run" --fast-forward-pc=0xZZ /dev/null
expect_usage "$build/tools/mipsx-fuzz" --runs=12x
expect_usage "$build/tools/mipsx-fuzz" --seed 99999999999999999999
expect_usage "$build/tools/mipsx-explore" --jobs -4
expect_usage "$build/tools/mipsx-serve" --queue 0
expect_usage "$build/tools/mipsx-trend" "$smoke/metrics.json"
expect_usage "$build/tools/mipsx-trend" --threshold -1 \
    "$smoke/metrics.json" "$smoke/metrics.json"
echo "usage-error smoke OK: all five tools exit 2"

echo "== tier-1: mipsx-trend gate smoke run =="
# The trend comparator must pass identical runs, fail (exit 1) on a
# gated regression, and reject malformed input with exit 2.
"$build/tools/mipsx-trend" --quiet --gate cpu0.pipeline.cycles \
    --md "$smoke/trend-ok.md" "$smoke/metrics.json" "$smoke/metrics.json"
grep -q "no gated regression" "$smoke/trend-ok.md"
python3 - "$smoke/metrics.json" "$smoke/doctored.json" << 'PYEOF'
import json, sys
m = json.load(open(sys.argv[1]))
# A baseline that claims fewer cycles makes the current run regress.
m["cpu0.pipeline.cycles"] = m["cpu0.pipeline.cycles"] // 2
json.dump(m, open(sys.argv[2], "w"))
PYEOF
rc=0
"$build/tools/mipsx-trend" --quiet --gate cpu0.pipeline.cycles \
    --md "$smoke/trend-bad.md" "$smoke/doctored.json" \
    "$smoke/metrics.json" || rc=$?
[ "$rc" = 1 ] || { echo "expected exit 1 from a gated regression (got $rc)" >&2; exit 1; }
grep -q "REGRESSED" "$smoke/trend-bad.md"
echo '{not json' > "$smoke/trend-broken.json"
rc=0
"$build/tools/mipsx-trend" --quiet "$smoke/trend-broken.json" \
    "$smoke/metrics.json" || rc=$?
[ "$rc" = 2 ] || { echo "expected exit 2 from malformed input (got $rc)" >&2; exit 1; }
echo "trend smoke OK: exit 0 clean / 1 gated regression / 2 bad input"

echo "== tier-1: mipsx-serve batch smoke run =="
# A daemon session over a small NDJSON batch must answer every request
# in submission order, survive a malformed line and a cycle-capped job
# with structured replies, return job metrics identical to a direct
# mipsx-run of the same file, and shut down cleanly on request.
python3 - "$repo/examples/asm/sumarray.s" > "$smoke/batch.ndjson" << 'PYEOF'
import json, sys
print(json.dumps({"op": "ping", "id": "hello"}))
print(json.dumps({"op": "run", "id": "file", "file": sys.argv[1]}))
print(json.dumps({"op": "run", "id": "wl", "workload": "fib"}))
print("{this is not json")
print(json.dumps({"op": "run", "id": "capped",
                  "program": "_start: beq r0, r0, _start\n",
                  "max_cycles": 100}))
print(json.dumps({"op": "shutdown", "id": "bye"}))
PYEOF
"$build/tools/mipsx-serve" --quiet --jobs 2 < "$smoke/batch.ndjson" \
    > "$smoke/serve-j2.ndjson"
"$build/tools/mipsx-run" --metrics-json="$smoke/direct.json" \
    "$repo/examples/asm/sumarray.s" > /dev/null
python3 - "$smoke/serve-j2.ndjson" "$smoke/direct.json" << 'PYEOF'
import json, sys
replies = [json.loads(line) for line in open(sys.argv[1])]
assert [r["id"] for r in replies] == \
    ["hello", "file", "wl", None, "capped", "bye"], replies
assert replies[0]["result"]["pong"] is True
assert replies[1]["result"]["passed"] is True
assert not replies[3]["ok"] and replies[3]["error"]["code"] == "parse"
assert replies[4]["ok"] and replies[4]["result"]["stop"] == "max-cycles"
assert replies[5]["result"]["shutdown"] is True
direct = json.load(open(sys.argv[2]))
assert replies[1]["result"]["metrics"] == direct, \
    "serve job metrics diverge from the direct mipsx-run"
print("serve smoke OK: %d replies, job metrics identical to mipsx-run"
      % len(replies))
PYEOF

echo "== tier-1: mipsx-serve determinism smoke run =="
# The reply stream must be byte-identical at any worker count: replies
# are sequenced in submission order and carry no host-dependent data.
"$build/tools/mipsx-serve" --quiet --jobs 1 < "$smoke/batch.ndjson" \
    > "$smoke/serve-j1.ndjson"
"$build/tools/mipsx-serve" --quiet --jobs 4 < "$smoke/batch.ndjson" \
    > "$smoke/serve-j4.ndjson"
cmp "$smoke/serve-j1.ndjson" "$smoke/serve-j4.ndjson"
cmp "$smoke/serve-j1.ndjson" "$smoke/serve-j2.ndjson"
echo "serve determinism smoke OK: --jobs 1/2/4 byte-identical"

echo "== tier-1: interval simulation determinism smoke run =="
# A checkpointed interval run with a warm-up that covers the full prior
# history must stitch to the direct run's counters cycle for cycle, and
# the metrics file must be byte-identical at any worker count.
"$build/tools/mipsx-run" --intervals 4 --warmup 1000000000 --jobs 1 \
    --metrics-json="$smoke/interval-j1.json" \
    "$repo/examples/asm/sumarray.s" > /dev/null
"$build/tools/mipsx-run" --intervals 4 --warmup 1000000000 --jobs 8 \
    --metrics-json="$smoke/interval-j8.json" \
    "$repo/examples/asm/sumarray.s" > /dev/null
cmp "$smoke/interval-j1.json" "$smoke/interval-j8.json"
python3 - "$smoke/interval-j1.json" "$smoke/direct.json" << 'PYEOF'
import json, sys
iv = json.load(open(sys.argv[1]))
direct = json.load(open(sys.argv[2]))
assert iv["interval.passed"] == 1
assert iv["interval.fallback"] == 0
assert iv["interval.exact"] == 1, "full warm-up must stitch exactly"
assert iv["interval.cycles"] == direct["cpu0.pipeline.cycles"], \
    "stitched cycles diverge from the direct run"
assert iv["interval.committed"] == direct["cpu0.pipeline.instructions"], \
    "stitched instructions diverge from the direct run"
print("interval smoke OK: %d pieces stitch to %d cycles, --jobs 1/8 "
      "byte-identical" % (iv["interval.intervals"], iv["interval.cycles"]))
PYEOF

echo "== tier-1: mipsx-serve load-generator bench =="
# The load generator must push >=1000 jobs through an in-process
# server and record throughput/latency stats in BENCH_serve.json.
"$build/tools/mipsx-serve" --bench --quiet --bench-jobs 1000 \
    --bench-clients 4 --suite fp --bench-out "$smoke/BENCH_serve.json"
python3 - "$smoke/BENCH_serve.json" << 'PYEOF'
import json, sys
b = json.load(open(sys.argv[1]))
assert b["serve.bench.jobs"] >= 1000
assert b["serve.bench.ok"] == b["serve.bench.jobs"]
assert b["serve.bench.passed"] == b["serve.bench.jobs"]
assert b["serve.bench.jobs_per_second"] > 0
assert b["serve.latency_p99_ms"] >= b["serve.latency_p50_ms"] >= 0
assert b["serve.cache_hits"] > b["serve.cache_misses"]
print("serve bench OK: %d jobs at %.0f jobs/s, p99 %.2f ms"
      % (b["serve.bench.jobs"], b["serve.bench.jobs_per_second"],
         b["serve.latency_p99_ms"]))
PYEOF
cp "$smoke/BENCH_serve.json" "$build/tier1-artifacts/"

if [ "${MIPSX_SKIP_TSAN:-0}" != "1" ]; then
    echo "== tier-1: ThreadSanitizer on the parallel suite runner =="
    tsan="$repo/build-tsan"
    cmake -B "$tsan" -S "$repo" -DMIPSX_TSAN=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$tsan" -j --target test_bench_parallel
    "$tsan/tests/test_bench_parallel"
fi

echo "tier-1 OK"
