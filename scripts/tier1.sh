#!/bin/sh
# Tier-1 verification: the default build plus the full test suite, then
# the parallel-determinism test again under ThreadSanitizer so data
# races in the suite runner cannot slip through.
#
# Usage: scripts/tier1.sh [build-dir]
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}

echo "== tier-1: build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j
(cd "$build" && ctest --output-on-failure -j)

echo "== tier-1: trace/metrics smoke run =="
# A traced run of a real program must produce parseable JSON on both
# exporter paths (Chrome trace-event file and flat metrics file).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
"$build/tools/mipsx-run" --trace=64 --trace-out="$smoke/trace.json" \
    --metrics-json="$smoke/metrics.json" "$repo/examples/asm/sumarray.s"
python3 - "$smoke/trace.json" "$smoke/metrics.json" << 'PYEOF'
import json, sys
trace = json.load(open(sys.argv[1]))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "empty traceEvents"
assert any(e.get("ph") == "i" for e in trace["traceEvents"])
metrics = json.load(open(sys.argv[2]))
assert metrics["cpu0.pipeline.cycles"] > 0
assert metrics["cpu0.pipeline.instructions"] > 0
print("trace/metrics smoke OK: %d events, %d metrics"
      % (len(trace["traceEvents"]), len(metrics)))
PYEOF

echo "== tier-1: mipsx-explore sweep smoke run =="
# A tiny 2x2 sweep must emit a well-formed long-form CSV and schema-
# tagged JSON, bit-identically at different worker counts.
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 1 --csv "$smoke/sweep1.csv" --json "$smoke/sweep1.json"
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 4 --csv "$smoke/sweep4.csv" --json "$smoke/sweep4.json"
cmp "$smoke/sweep1.csv" "$smoke/sweep4.csv"
cmp "$smoke/sweep1.json" "$smoke/sweep4.json"
python3 - "$smoke/sweep1.csv" "$smoke/sweep1.json" << 'PYEOF'
import json, sys
header = open(sys.argv[1]).readline().rstrip("\n")
assert header == "point,icache.missPenalty,icache.fetchWords,metric,value", \
    "bad CSV header: %r" % header
sweep = json.load(open(sys.argv[2]))
assert sweep["schema"] == "mipsx-explore-v1"
assert [a["param"] for a in sweep["grid"]["axes"]] == \
    ["icache.missPenalty", "icache.fetchWords"]
assert len(sweep["points"]) == 4
for p in sweep["points"]:
    assert p["failures"] == []
    assert p["metrics"]["suite.cpi"] > 0
print("explore sweep smoke OK: %d points, %d metrics each"
      % (len(sweep["points"]), len(sweep["points"][0]["metrics"])))
PYEOF

echo "== tier-1: ThreadSanitizer on the parallel suite runner =="
tsan="$repo/build-tsan"
cmake -B "$tsan" -S "$repo" -DMIPSX_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$tsan" -j --target test_bench_parallel
"$tsan/tests/test_bench_parallel"

echo "tier-1 OK"
