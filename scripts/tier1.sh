#!/usr/bin/env bash
# Tier-1 verification: the default build plus the full test suite, then
# smoke runs of every CLI tool (trace/metrics export, an explore sweep,
# a fuzz session — each checked for worker-count determinism), then the
# parallel-determinism test again under ThreadSanitizer so data races
# in the suite runner cannot slip through.
#
# This script is the single entry point CI calls (.github/workflows),
# so local and CI verification cannot drift. Knobs, all via env:
#   MIPSX_BUILD_TYPE    CMake build type (default RelWithDebInfo)
#   MIPSX_CMAKE_FLAGS   extra -D flags for the main build
#   MIPSX_SKIP_TSAN=1   skip the ThreadSanitizer stage (the sanitizer
#                       CI jobs build with ASan/UBSan, which cannot be
#                       combined with TSan in one process)
#
# Usage: scripts/tier1.sh [build-dir]
set -euo pipefail

repo=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
build_type=${MIPSX_BUILD_TYPE:-RelWithDebInfo}

echo "== tier-1: build + ctest ($build, $build_type) =="
# shellcheck disable=SC2086  # MIPSX_CMAKE_FLAGS is intentionally split
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE="$build_type" \
    ${MIPSX_CMAKE_FLAGS:-}
cmake --build "$build" -j
(cd "$build" && ctest --output-on-failure -j)

echo "== tier-1: trace/metrics smoke run =="
# A traced run of a real program must produce parseable JSON on both
# exporter paths (Chrome trace-event file and flat metrics file).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
"$build/tools/mipsx-run" --trace=64 --trace-out="$smoke/trace.json" \
    --metrics-json="$smoke/metrics.json" "$repo/examples/asm/sumarray.s"
python3 - "$smoke/trace.json" "$smoke/metrics.json" << 'PYEOF'
import json, sys
trace = json.load(open(sys.argv[1]))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "empty traceEvents"
assert any(e.get("ph") == "i" for e in trace["traceEvents"])
metrics = json.load(open(sys.argv[2]))
assert metrics["cpu0.pipeline.cycles"] > 0
assert metrics["cpu0.pipeline.instructions"] > 0
print("trace/metrics smoke OK: %d events, %d metrics"
      % (len(trace["traceEvents"]), len(metrics)))
PYEOF

echo "== tier-1: mipsx-explore sweep smoke run =="
# A tiny 2x2 sweep must emit a well-formed long-form CSV and schema-
# tagged JSON, bit-identically at different worker counts.
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 1 --csv "$smoke/sweep1.csv" --json "$smoke/sweep1.json"
"$build/tools/mipsx-explore" --quiet --suite fp \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 4 --csv "$smoke/sweep4.csv" --json "$smoke/sweep4.json"
cmp "$smoke/sweep1.csv" "$smoke/sweep4.csv"
cmp "$smoke/sweep1.json" "$smoke/sweep4.json"
python3 - "$smoke/sweep1.csv" "$smoke/sweep1.json" << 'PYEOF'
import json, sys
header = open(sys.argv[1]).readline().rstrip("\n")
assert header == "point,icache.missPenalty,icache.fetchWords,metric,value", \
    "bad CSV header: %r" % header
sweep = json.load(open(sys.argv[2]))
assert sweep["schema"] == "mipsx-explore-v1"
assert [a["param"] for a in sweep["grid"]["axes"]] == \
    ["icache.missPenalty", "icache.fetchWords"]
assert len(sweep["points"]) == 4
for p in sweep["points"]:
    assert p["failures"] == []
    assert p["metrics"]["suite.cpi"] > 0
print("explore sweep smoke OK: %d points, %d metrics each"
      % (len(sweep["points"]), len(sweep["points"][0]["metrics"])))
PYEOF

echo "== tier-1: prepared-cache determinism smoke run =="
# The same sweep with the prepared-image cache bypassed must emit
# byte-identical CSV/JSON: the cache may only change when toolchain
# work happens, never any output.
"$build/tools/mipsx-explore" --quiet --suite fp --no-cache \
    --axis icache.missPenalty=2,3 --axis icache.fetchWords=1,2 \
    --jobs 4 --csv "$smoke/sweep-nocache.csv" \
    --json "$smoke/sweep-nocache.json"
cmp "$smoke/sweep1.csv" "$smoke/sweep-nocache.csv"
cmp "$smoke/sweep1.json" "$smoke/sweep-nocache.json"
echo "prepared-cache determinism smoke OK"

# Persist the smoke outputs so CI can upload them next to the BENCH
# artifacts (and a human can diff sweeps across revisions).
mkdir -p "$build/tier1-artifacts"
cp "$smoke/sweep1.csv" "$smoke/sweep1.json" \
   "$smoke/sweep-nocache.csv" "$smoke/sweep-nocache.json" \
   "$build/tier1-artifacts/"

echo "== tier-1: mipsx-fuzz determinism smoke run =="
# A short fuzz session must pass clean (any divergence is a real bug:
# the exit status is nonzero) and reproduce byte-identically at
# different worker counts — .repro files, metrics and logs alike.
mkdir "$smoke/fuzz1" "$smoke/fuzz4"
(cd "$smoke/fuzz1" && MIPSX_BENCH_JOBS=1 "$build/tools/mipsx-fuzz" \
    --seed 2026 --runs 300 --metrics fuzz-metrics.json > fuzz.log)
(cd "$smoke/fuzz4" && MIPSX_BENCH_JOBS=4 "$build/tools/mipsx-fuzz" \
    --seed 2026 --runs 300 --metrics fuzz-metrics.json > fuzz.log)
diff -r "$smoke/fuzz1" "$smoke/fuzz4"
python3 - "$smoke/fuzz1/fuzz-metrics.json" << 'PYEOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["fuzz.programs"] == 300
assert m["fuzz.divergences"] == 0, "fuzz divergences: %r" % m
assert m["fuzz.retires"] > 0
print("fuzz smoke OK: %d programs, %d retires compared"
      % (m["fuzz.programs"], m["fuzz.retires"]))
PYEOF

echo "== tier-1: superblock ISS cosim leg smoke run =="
# The same session with the block-mode ISS added as a third cosim leg
# (--iss-mode both) must pass clean and produce byte-identical outputs
# to the step-only session: the superblock engine may only change how
# fast the ISS answers, never any answer.
mkdir "$smoke/fuzz-both"
(cd "$smoke/fuzz-both" && MIPSX_BENCH_JOBS=4 "$build/tools/mipsx-fuzz" \
    --seed 2026 --runs 300 --iss-mode both \
    --metrics fuzz-metrics.json > fuzz.log)
diff -r "$smoke/fuzz4" "$smoke/fuzz-both"
echo "superblock cosim smoke OK: both-mode session byte-identical"

if [ "${MIPSX_SKIP_TSAN:-0}" != "1" ]; then
    echo "== tier-1: ThreadSanitizer on the parallel suite runner =="
    tsan="$repo/build-tsan"
    cmake -B "$tsan" -S "$repo" -DMIPSX_TSAN=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$tsan" -j --target test_bench_parallel
    "$tsan/tests/test_bench_parallel"
fi

echo "tier-1 OK"
