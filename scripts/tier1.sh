#!/bin/sh
# Tier-1 verification: the default build plus the full test suite, then
# the parallel-determinism test again under ThreadSanitizer so data
# races in the suite runner cannot slip through.
#
# Usage: scripts/tier1.sh [build-dir]
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}

echo "== tier-1: build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j
(cd "$build" && ctest --output-on-failure -j)

echo "== tier-1: trace/metrics smoke run =="
# A traced run of a real program must produce parseable JSON on both
# exporter paths (Chrome trace-event file and flat metrics file).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
"$build/tools/mipsx-run" --trace=64 --trace-out="$smoke/trace.json" \
    --metrics-json="$smoke/metrics.json" "$repo/examples/asm/sumarray.s"
python3 - "$smoke/trace.json" "$smoke/metrics.json" << 'PYEOF'
import json, sys
trace = json.load(open(sys.argv[1]))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "empty traceEvents"
assert any(e.get("ph") == "i" for e in trace["traceEvents"])
metrics = json.load(open(sys.argv[2]))
assert metrics["cpu0.pipeline.cycles"] > 0
assert metrics["cpu0.pipeline.instructions"] > 0
print("trace/metrics smoke OK: %d events, %d metrics"
      % (len(trace["traceEvents"]), len(metrics)))
PYEOF

echo "== tier-1: ThreadSanitizer on the parallel suite runner =="
tsan="$repo/build-tsan"
cmake -B "$tsan" -S "$repo" -DMIPSX_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$tsan" -j --target test_bench_parallel
"$tsan/tests/test_bench_parallel"

echo "tier-1 OK"
