#!/bin/sh
# Tier-1 verification: the default build plus the full test suite, then
# the parallel-determinism test again under ThreadSanitizer so data
# races in the suite runner cannot slip through.
#
# Usage: scripts/tier1.sh [build-dir]
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}

echo "== tier-1: build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j
(cd "$build" && ctest --output-on-failure -j)

echo "== tier-1: ThreadSanitizer on the parallel suite runner =="
tsan="$repo/build-tsan"
cmake -B "$tsan" -S "$repo" -DMIPSX_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$tsan" -j --target test_bench_parallel
"$tsan/tests/test_bench_parallel"

echo "tier-1 OK"
