/**
 * @file
 * mipsx-serve — the batch simulation service.
 *
 *     mipsx-serve [options]                 # daemon on stdin/stdout
 *     mipsx-serve --bench [options]         # load generator
 *
 * Daemon mode reads one JSON request per line from stdin and writes
 * one JSON reply per line to stdout, in submission order (see
 * src/serve/serve.hh for the protocol). It exits cleanly on EOF or a
 * {"op":"shutdown"} request, after draining the queue; malformed
 * requests get structured error replies, never a dead process.
 *
 * Options (daemon):
 *   --jobs N            worker threads (default: MIPSX_BENCH_JOBS or
 *                       hardware concurrency)
 *   --max-cycles N      per-job cycle cap; a job's own max_cycles may
 *                       lower but not raise it (default 200000000)
 *   --queue N           queue bound; submission blocks when full
 *   --no-cache          bypass the prepared-workload cache
 *   --metrics FILE      write the serve.* counters on exit
 *
 * Options (--bench):
 *   --bench-jobs N      total jobs to push through (default 1000)
 *   --bench-clients N   concurrent submitting threads (default 4)
 *   --suite NAME        full | big-code | pascal | lisp | fp
 *   --bench-out FILE    result file (default BENCH_serve.json)
 *   --quiet             only the result file
 *
 * Exit status: 0 clean, 1 on a failed bench or unwritable output,
 * 2 on a usage error.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.hh"
#include "common/sim_error.hh"
#include "explore/grid.hh"
#include "serve/serve.hh"
#include "trace/metrics.hh"

using namespace mipsx;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--jobs N] [--max-cycles N] [--queue N] "
        "[--no-cache]\n"
        "       [--metrics FILE] [--list-params]\n"
        "       %s --bench [--bench-jobs N] [--bench-clients N]\n"
        "       [--suite NAME] [--bench-out FILE] [--quiet]\n",
        argv0, argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
try {
    serve::ServeConfig config;
    serve::BenchOptions bench;
    bool benchMode = false;
    bool quiet = false;
    std::string metricsOut;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        auto flagValue = [&](const char *flag) -> std::string {
            // --flag VALUE or --flag=VALUE
            const std::string pfx = std::string(flag) + "=";
            if (a == flag)
                return next();
            return a.substr(pfx.size());
        };
        auto matches = [&](const char *flag) {
            return a == flag || a.rfind(std::string(flag) + "=", 0) == 0;
        };
        if (a == "--list-params") {
            std::printf("job config parameters (\"config\" object "
                        "keys):\n\n");
            for (const auto &p : explore::knownParams())
                std::printf("  %-24s %s\n  %24s   values: %s\n", p.name,
                            p.doc, "", p.values);
            return 0;
        } else if (a == "--bench") {
            benchMode = true;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--no-cache") {
            config.preparedCache = false;
        } else if (matches("--jobs")) {
            config.workers =
                cli::parseUnsigned("--jobs", flagValue("--jobs"), 1);
        } else if (matches("--max-cycles")) {
            config.maxCycles =
                cli::parseU64("--max-cycles", flagValue("--max-cycles"),
                              1);
        } else if (matches("--queue")) {
            config.maxQueue = cli::parseU64(
                "--queue", flagValue("--queue"), 1, 1'000'000);
        } else if (matches("--metrics")) {
            metricsOut = flagValue("--metrics");
        } else if (matches("--bench-jobs")) {
            bench.jobs = cli::parseU64("--bench-jobs",
                                       flagValue("--bench-jobs"), 1);
        } else if (matches("--bench-clients")) {
            bench.clients = cli::parseUnsigned(
                "--bench-clients", flagValue("--bench-clients"), 1,
                1024);
        } else if (matches("--suite")) {
            bench.suite = flagValue("--suite");
        } else if (matches("--bench-out")) {
            bench.out = flagValue("--bench-out");
        } else {
            usage(argv[0]);
        }
    }

    if (benchMode) {
        bench.server = config;
        bench.quiet = quiet;
        return serve::runServeBench(bench);
    }

    serve::ServeStats stats;
    const int rc =
        serve::runStdioServer(std::cin, std::cout, config, &stats);
    if (!quiet)
        std::fprintf(stderr,
                     "mipsx-serve: %llu jobs (%llu errors, %llu "
                     "failed), queue peak %llu, cache %llu/%llu\n",
                     static_cast<unsigned long long>(stats.completed),
                     static_cast<unsigned long long>(stats.errors),
                     static_cast<unsigned long long>(stats.failed),
                     static_cast<unsigned long long>(stats.queuePeak),
                     static_cast<unsigned long long>(stats.cacheHits),
                     static_cast<unsigned long long>(
                         stats.cacheHits + stats.cacheMisses));
    if (!metricsOut.empty()) {
        trace::MetricsRegistry m;
        serve::collectMetrics(stats, m);
        if (!m.writeJsonFile(metricsOut))
            return 1;
    }
    return rc;
} catch (const cli::UsageError &e) {
    std::fprintf(stderr, "mipsx-serve: %s\n", e.what());
    return 2;
} catch (const SimError &e) {
    std::fprintf(stderr, "mipsx-serve: %s\n", e.what());
    return 1;
}
