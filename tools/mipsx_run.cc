/**
 * @file
 * mipsx-run — the command-line driver for the toolchain.
 *
 *     mipsx-run [options] program.s
 *
 * Assembles the program, optionally runs the code reorganizer, executes
 * it on the functional or the cycle-accurate simulator, and reports the
 * statistics the MIPS-X evaluation is built from.
 *
 * Options:
 *   --iss               run on the functional simulator (sequential)
 *   --no-reorg          skip the reorganizer (hand-scheduled input)
 *   --scheme S          no-squash | always-squash | squash-optional
 *   --slots N           branch delay slots (1 or 2)
 *   --scheduler S       heuristic | list | optimal (body scheduling)
 *   --priority P        critical-path | slack | register-pressure
 *   --profile           steer squashing with a profiling pre-run
 *   --icache-off        disable the on-chip instruction cache
 *   --trace             print every retiring instruction
 *   --trace=N           record the last N pipeline events in a ring
 *   --trace-out FILE    write the recorded events as Chrome
 *                       trace_event JSON (implies --trace=65536)
 *   --metrics-json FILE write every statistic as one flat JSON object
 *   --disasm            print the (scheduled) program and exit
 *   --max-cycles N      stop after N cycles
 *   --mp N              run on an N-CPU shared-memory multiprocessor
 *   --stats             dump every statistic as group.key lines
 *   --fast-forward N    ISS-execute the first N instructions, then go
 *                       cycle-accurate (caches start cold at handoff)
 *   --fast-forward-pc A like --fast-forward, to the next visit of
 *                       address A (hex ok)
 *   --intervals N       split the run into N checkpointed intervals,
 *                       simulate each cycle-accurately, stitch the
 *                       counters deterministically (1 = monolithic)
 *   --warmup K          instructions excluded before the stats gate:
 *                       a plain run's warm-up, or each interval's
 *                       cache re-priming prefix
 *   --sample S          cycle-accurate window per interval,
 *                       extrapolated to the interval length
 *                       (0 = exact tiling)
 *   --jobs J            worker threads over intervals (0 = all cores)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "assembler/assembler.hh"
#include "common/cli.hh"
#include "common/sim_error.hh"
#include "isa/disasm.hh"
#include "isa/isa.hh"
#include "mp/multi_machine.hh"
#include "reorg/scheduler.hh"
#include "sim/interval.hh"
#include "sim/machine.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"

using namespace mipsx;

namespace
{

struct Options
{
    std::string file;
    bool iss = false;
    bool reorg = true;
    bool profile = false;
    bool icacheOff = false;
    bool trace = false;
    bool disasm = false;
    bool stats = false;
    std::size_t traceDepth = 0;
    std::string traceOut;
    std::string metricsJson;
    unsigned slots = 2;
    unsigned mpCpus = 0;
    cycle_t maxCycles = 200'000'000;
    unsigned intervals = 1;
    std::uint64_t warmup = 0;
    std::uint64_t sample = 0;
    unsigned jobs = 1;
    std::uint64_t fastForward = 0;
    bool ffHasPc = false;
    addr_t ffPc = 0;
    reorg::BranchScheme scheme = reorg::BranchScheme::SquashOptional;
    reorg::SchedulerKind scheduler = reorg::SchedulerKind::Heuristic;
    reorg::SchedPriority priority = reorg::SchedPriority::CriticalPath;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--iss] [--no-reorg] [--scheme S] "
                 "[--slots N] [--profile]\n"
                 "       [--scheduler S] [--priority P]\n"
                 "       [--icache-off] [--trace[=N]] [--trace-out F] "
                 "[--metrics-json F]\n"
                 "       [--disasm] [--max-cycles N] [--fast-forward N]\n"
                 "       [--fast-forward-pc A] [--intervals N] "
                 "[--warmup K]\n"
                 "       [--sample S] [--jobs J] program.s\n",
                 argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--iss")
            o.iss = true;
        else if (a == "--no-reorg")
            o.reorg = false;
        else if (a == "--profile")
            o.profile = true;
        else if (a == "--icache-off")
            o.icacheOff = true;
        else if (a == "--trace")
            o.trace = true;
        else if (a.rfind("--trace=", 0) == 0)
            o.traceDepth = cli::parseU64("--trace", a.substr(8));
        else if (a == "--trace-out")
            o.traceOut = next();
        else if (a.rfind("--trace-out=", 0) == 0)
            o.traceOut = a.substr(12);
        else if (a == "--metrics-json")
            o.metricsJson = next();
        else if (a.rfind("--metrics-json=", 0) == 0)
            o.metricsJson = a.substr(15);
        else if (a == "--disasm")
            o.disasm = true;
        else if (a == "--stats")
            o.stats = true;
        else if (a == "--slots")
            o.slots = cli::parseUnsigned("--slots", next(), 1, 2);
        else if (a == "--max-cycles")
            o.maxCycles = cli::parseU64("--max-cycles", next(), 1);
        else if (a == "--intervals")
            o.intervals = cli::parseUnsigned("--intervals", next(), 1,
                                             1u << 20);
        else if (a.rfind("--intervals=", 0) == 0)
            o.intervals = cli::parseUnsigned("--intervals",
                                             a.substr(12), 1, 1u << 20);
        else if (a == "--warmup")
            o.warmup = cli::parseU64("--warmup", next());
        else if (a.rfind("--warmup=", 0) == 0)
            o.warmup = cli::parseU64("--warmup", a.substr(9));
        else if (a == "--sample")
            o.sample = cli::parseU64("--sample", next());
        else if (a.rfind("--sample=", 0) == 0)
            o.sample = cli::parseU64("--sample", a.substr(9));
        else if (a == "--jobs")
            o.jobs = cli::parseUnsigned("--jobs", next(), 0, 1024);
        else if (a.rfind("--jobs=", 0) == 0)
            o.jobs = cli::parseUnsigned("--jobs", a.substr(7), 0, 1024);
        else if (a == "--fast-forward")
            o.fastForward = cli::parseU64("--fast-forward", next());
        else if (a.rfind("--fast-forward=", 0) == 0)
            o.fastForward =
                cli::parseU64("--fast-forward", a.substr(15));
        else if (a == "--fast-forward-pc") {
            o.ffHasPc = true;
            o.ffPc = cli::parseAddr("--fast-forward-pc", next());
        } else if (a.rfind("--fast-forward-pc=", 0) == 0) {
            o.ffHasPc = true;
            o.ffPc = cli::parseAddr("--fast-forward-pc", a.substr(18));
        }
        else if (a == "--mp")
            o.mpCpus = cli::parseUnsigned("--mp", next(), 1, 64);
        else if (a == "--scheme") {
            const auto s = next();
            if (s == "no-squash")
                o.scheme = reorg::BranchScheme::NoSquash;
            else if (s == "always-squash")
                o.scheme = reorg::BranchScheme::AlwaysSquash;
            else if (s == "squash-optional")
                o.scheme = reorg::BranchScheme::SquashOptional;
            else
                usage(argv[0]);
        } else if (a == "--scheduler") {
            const auto s = next();
            if (s == "heuristic")
                o.scheduler = reorg::SchedulerKind::Heuristic;
            else if (s == "list")
                o.scheduler = reorg::SchedulerKind::List;
            else if (s == "optimal")
                o.scheduler = reorg::SchedulerKind::Optimal;
            else
                usage(argv[0]);
        } else if (a == "--priority") {
            const auto s = next();
            if (s == "critical-path")
                o.priority = reorg::SchedPriority::CriticalPath;
            else if (s == "slack")
                o.priority = reorg::SchedPriority::Slack;
            else if (s == "register-pressure")
                o.priority = reorg::SchedPriority::RegPressure;
            else
                usage(argv[0]);
        } else if (!a.empty() && a[0] == '-') {
            usage(argv[0]);
        } else if (o.file.empty()) {
            o.file = a;
        } else {
            usage(argv[0]);
        }
    }
    if (o.file.empty())
        usage(argv[0]);
    return o;
}

std::map<addr_t, double>
profileRun(const assembler::Program &prog)
{
    memory::MainMemory mem;
    mem.loadProgram(prog);
    sim::Iss iss({}, mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    struct Acc
    {
        std::uint64_t taken = 0, total = 0;
    };
    std::map<addr_t, Acc> acc;
    iss.setBranchHook([&acc](const sim::BranchEvent &ev) {
        if (!ev.conditional)
            return;
        ++acc[ev.pc].total;
        if (ev.taken)
            ++acc[ev.pc].taken;
    });
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, 0x70000);
    if (iss.run() != sim::IssStop::Halt)
        fatal("profiling run did not halt");
    std::map<addr_t, double> out;
    for (const auto &[pc, a] : acc)
        out[pc] = static_cast<double>(a.taken) / a.total;
    return out;
}

} // namespace

int
main(int argc, char **argv)
try {
    const Options o = parseArgs(argc, argv);

    std::ifstream in(o.file);
    if (!in)
        fatal(strformat("cannot open '%s'", o.file.c_str()));
    std::stringstream ss;
    ss << in.rdbuf();

    auto program = assembler::assemble(ss.str(), o.file);
    std::printf("assembled %zu instruction words from %s\n",
                program.textSize(), o.file.c_str());

    if (o.reorg && !o.iss) {
        reorg::ReorgConfig rc;
        rc.scheme = o.scheme;
        rc.slots = o.slots;
        rc.scheduler = o.scheduler;
        rc.priority = o.priority;
        if (o.profile) {
            rc.prediction = reorg::Prediction::Profile;
            rc.profile = profileRun(program);
        }
        reorg::ReorgStats st;
        program = reorg::reorganize(program, rc, &st);
        std::printf("reorganized (%s, %u slots, %s): %llu/%llu slots "
                    "filled, %llu load hazards fixed\n",
                    reorg::branchSchemeName(o.scheme), o.slots,
                    reorg::schedulerKindName(o.scheduler),
                    static_cast<unsigned long long>(st.slotsTotal -
                                                    st.slotsNop),
                    static_cast<unsigned long long>(st.slotsTotal),
                    static_cast<unsigned long long>(st.loadHazards));
    }

    if (o.disasm) {
        for (const auto &sec : program.sections) {
            if (!sec.isText)
                continue;
            std::printf("\nsection %s (%s space) @ 0x%x:\n",
                        sec.name.c_str(),
                        sec.space == AddressSpace::System ? "system"
                                                          : "user",
                        sec.base);
            for (std::size_t i = 0; i < sec.words.size(); ++i) {
                const addr_t pc = sec.base + static_cast<addr_t>(i);
                std::string label;
                for (const auto &[n, a] : program.symbols)
                    if (a == pc)
                        label = n + ":";
                std::printf("%05x %-12s %-30s%s\n", pc, label.c_str(),
                            isa::disassemble(sec.words[i], pc,
                                             true).c_str(),
                            sec.slots[i] ? " ; slot" : "");
            }
        }
        return 0;
    }

    if (o.iss) {
        memory::MainMemory mem;
        const auto r = sim::runIss(program, mem);
        std::printf("functional run: %s after %llu instructions "
                    "(%llu loads, %llu stores, %llu branches)\n",
                    r.reason == sim::IssStop::Halt ? "halted" : "FAILED",
                    static_cast<unsigned long long>(r.stats.steps),
                    static_cast<unsigned long long>(r.stats.loads),
                    static_cast<unsigned long long>(r.stats.stores),
                    static_cast<unsigned long long>(r.stats.branches));
        return r.reason == sim::IssStop::Halt ? 0 : 1;
    }

    if (o.mpCpus > 0) {
        mp::MultiMachineConfig mc;
        mc.cpus = o.mpCpus;
        mc.cpu.branchDelay = o.slots;
        mc.cpu.icache.enabled = !o.icacheOff;
        mc.maxCycles = o.maxCycles;
        mp::MultiMachine machine(mc);
        machine.load(program);
        const auto r = machine.run();
        std::printf("multiprocessor run (%u CPUs): %s\n", o.mpCpus,
                    r.allHalted ? "all halted" : "FAILED");
        std::printf("  cycles        %llu\n",
                    static_cast<unsigned long long>(r.cycles));
        std::printf("  instructions  %llu (aggregate %.1f MIPS at "
                    "20 MHz)\n",
                    static_cast<unsigned long long>(r.instructions),
                    r.cycles ? 20.0 * double(r.instructions) /
                            double(r.cycles)
                             : 0.0);
        std::printf("  bus           %llu transactions, %llu wait "
                    "cycles; %llu invalidations\n",
                    static_cast<unsigned long long>(r.busTransactions),
                    static_cast<unsigned long long>(r.busWaitCycles),
                    static_cast<unsigned long long>(r.invalidations));
        return r.allHalted ? 0 : 1;
    }

    sim::MachineConfig cfg;
    cfg.cpu.branchDelay = o.slots;
    cfg.cpu.icache.enabled = !o.icacheOff;
    cfg.cpu.maxCycles = o.maxCycles;
    cfg.attachCounterCop = true;
    cfg.fastForward.instructions = o.fastForward;
    cfg.fastForward.hasPc = o.ffHasPc;
    cfg.fastForward.pc = o.ffPc;
    cfg.warmupInstructions = o.warmup;

    if (o.intervals > 1) {
        sim::IntervalConfig ic;
        ic.intervals = o.intervals;
        ic.warmup = o.warmup;
        ic.sample = o.sample;
        ic.jobs = o.jobs;
        const auto r = sim::runIntervals(program, cfg, ic);
        if (!r.intervalRan)
            std::printf("interval run fell back to monolithic: %s\n",
                        r.fallback.c_str());
        std::printf("interval run: %s (%zu pieces, %s, jobs %u)\n",
                    core::stopReasonName(r.result.reason),
                    r.pieces.size(), r.exact ? "exact" : "sampled",
                    o.jobs);
        std::printf("  plan          %llu instructions (%llu ISS "
                    "steps)\n",
                    static_cast<unsigned long long>(r.planInstructions),
                    static_cast<unsigned long long>(
                        r.planIssInstructions));
        const auto &e = r.estimated.pipeline;
        std::printf("  cycles        %llu (stitched %llu)\n",
                    static_cast<unsigned long long>(e.cycles),
                    static_cast<unsigned long long>(
                        r.stitched.pipeline.cycles));
        std::printf("  instructions  %llu  (CPI %.3f)\n",
                    static_cast<unsigned long long>(e.committed),
                    e.cpi());
        std::printf("  warm-up       %llu instructions, %llu cycles "
                    "(excluded)\n",
                    static_cast<unsigned long long>(
                        r.warmupInstructions),
                    static_cast<unsigned long long>(r.warmupCycles));
        if (!o.metricsJson.empty()) {
            trace::MetricsRegistry m;
            sim::collectMetrics(r, m);
            m.set("warmup.instructions", r.warmupInstructions);
            m.set("warmup.cycles", r.warmupCycles);
            if (!m.writeJsonFile(o.metricsJson))
                fatal(strformat("cannot write '%s'",
                                o.metricsJson.c_str()));
            std::printf("  metrics       %zu counters -> %s\n",
                        m.names().size(), o.metricsJson.c_str());
        }
        return r.passed ? 0 : 1;
    }
    // --trace-out without an explicit --trace=N still needs a ring.
    cfg.traceDepth = o.traceDepth;
    if (!o.traceOut.empty() && cfg.traceDepth == 0)
        cfg.traceDepth = 65536;
    sim::Machine machine(cfg);
    machine.load(program);
    if (o.trace) {
        machine.cpu().setRetireHook([](const core::Cpu::RetireEvent &ev) {
            std::printf("%8llu  %05x  %-30s%s\n",
                        static_cast<unsigned long long>(ev.cycle), ev.pc,
                        isa::disassemble(ev.raw, ev.pc, true).c_str(),
                        ev.squashed ? "  [squashed]" : "");
        });
    }
    const auto result = machine.run();
    const auto &s = machine.cpu().stats();

    std::printf("pipeline run: %s\n", core::stopReasonName(result.reason));
    if (machine.fastForwarded().ran) {
        const auto &ff = machine.fastForwarded();
        std::printf("  fast-forward  %llu instructions on the ISS, "
                    "handoff at %05x\n",
                    static_cast<unsigned long long>(ff.issSteps),
                    ff.handoffPc);
    }
    if (machine.warmup().ran) {
        const auto &base = machine.warmup().baseline;
        std::printf("  warm-up       %llu instructions, %llu cycles "
                    "(excluded from steady-state counters)\n",
                    static_cast<unsigned long long>(
                        base.pipeline.committed),
                    static_cast<unsigned long long>(
                        base.pipeline.cycles));
    }
    std::printf("  cycles        %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("  instructions  %llu  (CPI %.3f; %.1f MIPS at 20 MHz)\n",
                static_cast<unsigned long long>(s.committed), s.cpi(),
                s.cpi() > 0 ? 20.0 / s.cpi() : 0.0);
    std::printf("  no-ops        %llu (%.1f%%), squashed %llu\n",
                static_cast<unsigned long long>(s.committedNops),
                100.0 * s.noopFraction(),
                static_cast<unsigned long long>(s.squashed));
    std::printf("  branches      %llu (%.2f cycles/branch), jumps %llu\n",
                static_cast<unsigned long long>(s.branches),
                s.cyclesPerBranch(),
                static_cast<unsigned long long>(s.jumps));
    std::printf("  icache        %.1f%% miss, fetch cost %.3f\n",
                100.0 * machine.cpu().icache().missRatio(),
                machine.cpu().icache().avgFetchCost());
    std::printf("  ecache        %.1f%% miss over %llu accesses\n",
                100.0 * machine.cpu().ecache().missRatio(),
                static_cast<unsigned long long>(
                    machine.cpu().ecache().accesses()));
    std::printf("  exceptions    %llu (%llu interrupts), hazards %llu\n",
                static_cast<unsigned long long>(s.exceptions),
                static_cast<unsigned long long>(s.interrupts),
                static_cast<unsigned long long>(s.hazardViolations));
    if (cfg.traceDepth && o.traceDepth && o.traceOut.empty()) {
        // Ring requested but no file: dump the tail to stdout.
        std::ostringstream os;
        trace::dumpTrace(os, machine.trace());
        std::fputs(os.str().c_str(), stdout);
    }
    if (!o.traceOut.empty()) {
        if (!trace::writeChromeTraceFile(o.traceOut,
                                         machine.trace().events()))
            fatal(strformat("cannot write '%s'", o.traceOut.c_str()));
        std::printf("  trace         %zu events -> %s (%llu dropped)\n",
                    machine.trace().size(), o.traceOut.c_str(),
                    static_cast<unsigned long long>(
                        machine.trace().dropped()));
    }
    if (!o.metricsJson.empty()) {
        trace::MetricsRegistry m;
        machine.cpu().collectMetrics(m);
        if (machine.warmup().ran) {
            // Gated-out work under its own keys; the cpu.* counters
            // above remain whole-run totals.
            const auto &base = machine.warmup().baseline;
            m.set("warmup.instructions", base.pipeline.committed);
            m.set("warmup.cycles", base.pipeline.cycles);
        }
        if (!m.writeJsonFile(o.metricsJson))
            fatal(strformat("cannot write '%s'", o.metricsJson.c_str()));
        std::printf("  metrics       %zu counters -> %s\n",
                    m.names().size(), o.metricsJson.c_str());
    }
    if (o.stats) {
        std::printf("\n");
        std::ostringstream os;
        machine.cpu().dumpStats(os);
        std::fputs(os.str().c_str(), stdout);
    }
    return result.halted() ? 0 : 1;
} catch (const cli::UsageError &e) {
    std::fprintf(stderr, "mipsx-run: %s\n", e.what());
    return 2;
} catch (const SimError &e) {
    std::fprintf(stderr, "mipsx-run: %s\n", e.what());
    return 1;
}
