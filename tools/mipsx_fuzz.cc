/**
 * @file
 * mipsx-fuzz — the differential fuzzing driver.
 *
 *     mipsx-fuzz --seed S --runs N [options]
 *
 * Generates N seeded random MIPS-X programs (valid-by-construction,
 * guaranteed-terminating), runs each through the delayed-semantics ISS
 * and the cycle-accurate pipeline in lockstep, shrinks every divergence
 * to a minimal reproducer and writes it as a disassembled .repro file.
 * Deterministic: the same flags produce the same divergence count and
 * byte-identical .repro files, for any --jobs value.
 *
 * Options:
 *   --seed N                session seed (default 1)
 *   --runs N                programs to generate (default 100)
 *   --max-insns N           generator static budget per program
 *   --weights K=V,...       instruction-mix weights (alu, mem, branch,
 *                           jump, coproc, smc, loop, squash)
 *   --config PARAM=VALUE    machine-config point (repeatable; the same
 *                           parameters mipsx-explore sweeps)
 *   --iss-mode M            step | block | both — which ISS execute
 *                           loop(s) to run against the pipeline (both
 *                           adds the block-vs-step leg)
 *   --sched-check           fourth leg: per run, also generate a
 *                           sequential program and check that every
 *                           reorg scheduling backend preserves its
 *                           semantics (reorg.* --config params apply)
 *   --jobs N                worker threads (default: MIPSX_BENCH_JOBS
 *                           or hardware concurrency)
 *   --repro-dir DIR         where .repro files go (default ".";
 *                           "none" disables writing)
 *   --metrics FILE          write fuzz.* counters as flat JSON
 *   --no-shrink             keep divergences full-size
 *   --quiet                 only the final summary line
 *   --list-params           print every --config parameter and exit
 *
 * Exit status: 0 clean, 1 on any divergence, 2 on a usage error
 * (unknown flags and malformed flag values alike).
 */

#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "common/sim_error.hh"
#include "explore/grid.hh"
#include "fuzz/session.hh"
#include "trace/metrics.hh"
#include "workload/suite_runner.hh"

using namespace mipsx;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed N] [--runs N] [--max-insns N]\n"
        "       [--weights K=V,...] [--config PARAM=VALUE]... [--jobs N]\n"
        "       [--iss-mode step|block|both] [--sched-check]\n"
        "       [--repro-dir DIR] [--metrics FILE] [--no-shrink]\n"
        "       [--quiet] [--list-params]\n",
        argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
try {
    fuzz::FuzzOptions opts;
    opts.reproDir = ".";
    // --config reuses the explore grid's parameter table; the fuzzer
    // takes the machine config and predecode toggle from the result.
    workload::SuiteRunOptions point;
    std::string metricsOut;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        auto flagValue = [&](const char *flag) -> std::string {
            // --flag VALUE or --flag=VALUE
            const std::string pfx = std::string(flag) + "=";
            if (a == flag)
                return next();
            return a.substr(pfx.size());
        };
        auto matches = [&](const char *flag) {
            return a == flag || a.rfind(std::string(flag) + "=", 0) == 0;
        };
        if (a == "--list-params") {
            std::printf("machine parameters (--config PARAM=VALUE):\n\n");
            for (const auto &p : explore::knownParams())
                std::printf("  %-24s %s\n  %24s   values: %s\n", p.name,
                            p.doc, "", p.values);
            return 0;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--no-shrink") {
            opts.shrinkDivergences = false;
        } else if (a == "--sched-check") {
            opts.schedCheck = true;
        } else if (matches("--seed")) {
            opts.seed = cli::parseU64("--seed", flagValue("--seed"));
        } else if (matches("--runs")) {
            opts.runs = cli::parseU64("--runs", flagValue("--runs"));
        } else if (matches("--max-insns")) {
            opts.maxInsns = cli::parseUnsigned(
                "--max-insns", flagValue("--max-insns"), 16, 100'000);
        } else if (matches("--weights")) {
            opts.weights = fuzz::parseWeights(flagValue("--weights"));
        } else if (matches("--config")) {
            const auto kv = flagValue("--config");
            const auto eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal(strformat("--config: want PARAM=VALUE, got '%s'",
                                kv.c_str()));
            explore::applyParam(point, kv.substr(0, eq),
                                kv.substr(eq + 1));
        } else if (matches("--iss-mode")) {
            const auto m = flagValue("--iss-mode");
            if (m == "step")
                opts.cosim.issMode = fuzz::CosimIssMode::Step;
            else if (m == "block")
                opts.cosim.issMode = fuzz::CosimIssMode::Block;
            else if (m == "both")
                opts.cosim.issMode = fuzz::CosimIssMode::Both;
            else
                fatal(strformat("--iss-mode: want step, block or both, "
                                "got '%s'",
                                m.c_str()));
        } else if (matches("--jobs")) {
            opts.jobs =
                cli::parseUnsigned("--jobs", flagValue("--jobs"), 1);
        } else if (matches("--repro-dir")) {
            opts.reproDir = flagValue("--repro-dir");
            if (opts.reproDir == "none")
                opts.reproDir.clear();
        } else if (matches("--metrics")) {
            metricsOut = flagValue("--metrics");
        } else {
            usage(argv[0]);
        }
    }

    opts.cosim.machine = point.machine;
    opts.cosim.predecode = point.predecode;
    opts.reorg = point.reorg;

    if (!quiet)
        std::printf("fuzz: seed %llu, %llu run%s, %u insns/program, "
                    "weights %s\n",
                    static_cast<unsigned long long>(opts.seed),
                    static_cast<unsigned long long>(opts.runs),
                    opts.runs == 1 ? "" : "s", opts.maxInsns,
                    fuzz::formatWeights(opts.weights).c_str());

    const auto result = fuzz::runFuzz(opts);

    if (!quiet) {
        for (const auto &d : result.divergences) {
            std::printf("  divergence at run %llu (seed 0x%016llx), "
                        "reproducer %u insns%s%s\n",
                        static_cast<unsigned long long>(d.runIndex),
                        static_cast<unsigned long long>(d.runSeed),
                        d.shrunkTo, d.reproPath.empty() ? "" : ": ",
                        d.reproPath.c_str());
        }
    }
    std::printf("fuzz: %llu programs, %llu matched, %zu diverged, "
                "%llu inconclusive, %llu retires compared\n",
                static_cast<unsigned long long>(result.programs),
                static_cast<unsigned long long>(result.matches),
                result.divergences.size(),
                static_cast<unsigned long long>(result.inconclusive),
                static_cast<unsigned long long>(result.retires));
    if (opts.schedCheck)
        std::printf("fuzz: sched-check: %llu programs, %llu matched, "
                    "%llu inconclusive\n",
                    static_cast<unsigned long long>(result.schedChecks),
                    static_cast<unsigned long long>(result.schedMatches),
                    static_cast<unsigned long long>(
                        result.schedInconclusive));

    if (!metricsOut.empty()) {
        trace::MetricsRegistry m;
        result.collectMetrics(m);
        if (!m.writeJsonFile(metricsOut))
            return 1;
        if (!quiet)
            std::printf("wrote %s\n", metricsOut.c_str());
    }

    return result.divergences.empty() ? 0 : 1;
} catch (const cli::UsageError &e) {
    std::fprintf(stderr, "mipsx-fuzz: %s\n", e.what());
    return 2;
} catch (const SimError &e) {
    std::fprintf(stderr, "mipsx-fuzz: %s\n", e.what());
    return 1;
}
