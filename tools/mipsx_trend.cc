/**
 * @file
 * mipsx-trend — diff BENCH_*.json files and gate regressions.
 *
 *     mipsx-trend [options] BASELINE.json [MID.json ...] CURRENT.json
 *
 * Compares a chronological sequence of flat benchmark JSON files
 * (baseline first, current last), prints a markdown trend table, and
 * exits 1 when any --gate key worsened by more than --threshold percent
 * (or disappeared). Ungated keys are always report-only, so host-timing
 * noise can sit in the same table as the deterministic counters CI
 * actually gates on.
 *
 * Options:
 *   --gate KEY        gate KEY (repeatable; no gates = report-only)
 *   --threshold PCT   regression threshold in percent (default 2)
 *   --md FILE         write the markdown report to FILE ("-" = stdout)
 *   --json FILE       write the JSON report to FILE ("-" = stdout)
 *   --report-only     never exit 1; still prints REGRESSED rows
 *   --quiet           suppress the default stdout report
 *
 * Exit codes: 0 no gated regression, 1 gated regression, 2 usage error
 * or malformed input.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/sim_error.hh"
#include "explore/trend.hh"

using namespace mipsx;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--gate KEY]... [--threshold PCT] "
                 "[--md FILE] [--json FILE]\n"
                 "       [--report-only] [--quiet] BASELINE.json "
                 "[MID.json ...] CURRENT.json\n",
                 argv0);
    std::exit(2);
}

bool
writeReport(const std::string &path, const explore::TrendReport &rep,
            void (*writer)(std::ostream &, const explore::TrendReport &))
{
    if (path == "-") {
        writer(std::cout, rep);
        return true;
    }
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "!! cannot write %s\n", path.c_str());
        return false;
    }
    writer(f, rep);
    return true;
}

} // namespace

int
main(int argc, char **argv)
try {
    explore::TrendOptions opts;
    std::vector<std::string> files;
    std::string mdOut, jsonOut;
    bool reportOnly = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        auto flagValue = [&](const char *flag) -> std::string {
            const std::string pfx = std::string(flag) + "=";
            if (a == flag)
                return next();
            return a.substr(pfx.size());
        };
        auto matches = [&](const char *flag) {
            return a == flag || a.rfind(std::string(flag) + "=", 0) == 0;
        };
        if (matches("--gate")) {
            opts.gates.push_back(flagValue("--gate"));
        } else if (matches("--threshold")) {
            opts.thresholdPct = cli::parseDouble(
                "--threshold", flagValue("--threshold"), 0.0);
        } else if (matches("--md")) {
            mdOut = flagValue("--md");
        } else if (matches("--json")) {
            jsonOut = flagValue("--json");
        } else if (a == "--report-only") {
            reportOnly = true;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (!a.empty() && a[0] == '-' && a != "-") {
            usage(argv[0]);
        } else {
            files.push_back(a);
        }
    }
    if (files.size() < 2)
        usage(argv[0]);

    std::vector<explore::FlatMetrics> runs;
    runs.reserve(files.size());
    for (const auto &f : files)
        runs.push_back(explore::flatMetricsFromJsonFile(f));

    const auto rep = explore::trendCompare(runs, opts);

    if (!quiet && mdOut != "-")
        explore::writeTrendMarkdown(std::cout, rep);
    if (!mdOut.empty() &&
        !writeReport(mdOut, rep, explore::writeTrendMarkdown))
        return 2;
    if (!jsonOut.empty() &&
        !writeReport(jsonOut, rep, explore::writeTrendJson))
        return 2;

    if (rep.regressed()) {
        std::fprintf(stderr, "mipsx-trend: gated regression (threshold "
                             "%g%%)\n",
                     rep.thresholdPct);
        return reportOnly ? 0 : 1;
    }
    return 0;
} catch (const cli::UsageError &e) {
    std::fprintf(stderr, "mipsx-trend: %s\n", e.what());
    return 2;
} catch (const SimError &e) {
    std::fprintf(stderr, "mipsx-trend: %s\n", e.what());
    return 2;
}
