/**
 * @file
 * mipsx-explore — the design-space exploration driver.
 *
 *     mipsx-explore --axis PARAM=V1,V2,... [--axis ...] [options]
 *     mipsx-explore --grid sweep.json [options]
 *
 * Expands a declarative parameter grid over the machine configuration
 * to its cartesian point set, runs the workload suite at every point
 * through the deterministic worker pool, and writes the sweep as
 * long-form CSV and/or nested JSON. The paper's tradeoff studies
 * (Table 1, the icache double-fetch and service-time figures) are
 * single invocations of this tool; see EXPERIMENTS.md "Running a
 * sweep".
 *
 * Options:
 *   --axis PARAM=V1,V2,...  add one grid axis (repeatable; order is
 *                           sweep order, last axis varies fastest)
 *   --set PARAM=VALUE       fix a parameter for every point (repeatable)
 *   --grid FILE             read the sweep spec (suite/base/axes) from
 *                           a JSON file; --axis/--set add to it
 *   --suite NAME            full | big-code | pascal | lisp | fp
 *   --jobs N                worker threads per point (default:
 *                           MIPSX_BENCH_JOBS or hardware concurrency)
 *   --csv FILE              write long-form CSV ("-" for stdout)
 *   --json FILE             write nested JSON ("-" for stdout)
 *   --no-cache              rebuild every workload from source at every
 *                           point instead of using the process-wide
 *                           prepared-image cache (outputs identical;
 *                           the tier-1 determinism smoke diffs them)
 *   --pareto X,Y            annotate the sweep with the Pareto frontier
 *                           and knee over two metrics, each "KEY",
 *                           "KEY:min" or "KEY:max" (e.g.
 *                           "suite.cycles:min,energy.total:min")
 *   --refine N              adaptive search: after the coarse grid,
 *                           bisect the frontier knee's numeric axes
 *                           until N total points (uses the --pareto
 *                           objectives; default suite.cycles:min vs
 *                           energy.total:min)
 *   --shard I/N             run only grid points with index = I mod N
 *                           (0-based); the JSON records the shard so
 *                           --merge can reassemble the full sweep
 *   --merge                 treat positional arguments as sharded JSON
 *                           outputs, merge them, and write --csv/--json
 *                           (byte-identical to an unsharded run)
 *   --quiet                 no per-point progress or summary table
 *   --list-params           print every sweepable parameter and exit
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <tuple>
#include <vector>

#include "common/cli.hh"
#include "common/sim_error.hh"
#include "explore/explore.hh"
#include "stats/table.hh"

using namespace mipsx;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--grid FILE] [--axis PARAM=V1,V2,...]... "
        "[--set PARAM=V]...\n"
        "       [--suite NAME] [--jobs N] [--csv FILE] [--json FILE]\n"
        "       [--pareto X,Y] [--refine N] [--shard I/N]\n"
        "       [--no-cache] [--quiet] [--list-params]\n"
        "       %s --merge SHARD.json... [--csv FILE] [--json FILE]\n",
        argv0, argv0);
    std::exit(2);
}

/** Split "X,Y" into two metric objectives. */
std::pair<explore::MetricObjective, explore::MetricObjective>
parseParetoFlag(const std::string &arg)
{
    const auto comma = arg.find(',');
    if (comma == std::string::npos)
        fatal(strformat("--pareto: want X,Y (two metric objectives), "
                        "got '%s'",
                        arg.c_str()));
    return {explore::parseObjective(arg.substr(0, comma)),
            explore::parseObjective(arg.substr(comma + 1))};
}

/** Split "I/N" into (shardIndex, shardCount). */
std::pair<unsigned, unsigned>
parseShardFlag(const std::string &arg)
{
    const auto slash = arg.find('/');
    if (slash == std::string::npos)
        fatal(strformat("--shard: want I/N (e.g. 0/4), got '%s'",
                        arg.c_str()));
    const unsigned count = cli::parseUnsigned(
        "--shard", arg.substr(slash + 1), 1);
    const unsigned index = cli::parseUnsigned(
        "--shard", arg.substr(0, slash), 0, count - 1);
    return {index, count};
}

void
listParams()
{
    std::printf("sweepable parameters (--axis PARAM=V1,V2,...):\n\n");
    for (const auto &p : explore::knownParams())
        std::printf("  %-24s %s\n  %24s   values: %s\n", p.name, p.doc,
                    "", p.values);
    std::printf("\nsuites: ");
    for (const auto &s : explore::suiteNames())
        std::printf("%s ", s.c_str());
    std::printf("\n");
}

/** Split "PARAM=V1,V2,..." into an axis. */
explore::GridAxis
parseAxisFlag(const std::string &arg)
{
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal(strformat("--axis: want PARAM=V1,V2,... got '%s'",
                        arg.c_str()));
    explore::GridAxis axis;
    axis.param = arg.substr(0, eq);
    std::size_t start = eq + 1;
    while (start <= arg.size()) {
        const auto comma = arg.find(',', start);
        const auto end = comma == std::string::npos ? arg.size() : comma;
        axis.values.push_back(arg.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return axis;
}

} // namespace

int
main(int argc, char **argv)
try {
    explore::SweepConfig cfg;
    bool haveGrid = false;
    bool suiteSet = false;
    bool quiet = false;
    bool merge = false;
    bool havePareto = false;
    std::size_t refineBudget = 0;
    explore::AdaptiveOptions adaptive;
    std::vector<std::string> shardFiles;
    std::string csvOut, jsonOut;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        auto flagValue = [&](const char *flag) -> std::string {
            // --flag VALUE or --flag=VALUE
            const std::string pfx = std::string(flag) + "=";
            if (a == flag)
                return next();
            return a.substr(pfx.size());
        };
        auto matches = [&](const char *flag) {
            return a == flag ||
                   a.rfind(std::string(flag) + "=", 0) == 0;
        };
        if (a == "--list-params") {
            listParams();
            return 0;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--no-cache") {
            cfg.runner.preparedCache = false;
        } else if (matches("--grid")) {
            const explore::SweepConfig fileCfg =
                explore::sweepFromJsonFile(flagValue("--grid"));
            cfg.suite = fileCfg.suite;
            cfg.base = fileCfg.base;
            // Flags given before --grid stay; file axes append after.
            for (const auto &ax : fileCfg.grid.axes)
                cfg.grid.axes.push_back(ax);
            haveGrid = true;
        } else if (matches("--axis")) {
            cfg.grid.axes.push_back(parseAxisFlag(flagValue("--axis")));
            haveGrid = true;
        } else if (matches("--set")) {
            const auto kv = flagValue("--set");
            const auto eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal(strformat("--set: want PARAM=VALUE, got '%s'",
                                kv.c_str()));
            cfg.base.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        } else if (matches("--suite")) {
            cfg.suite = flagValue("--suite");
            suiteSet = true;
        } else if (matches("--jobs")) {
            cfg.runner.jobs =
                cli::parseUnsigned("--jobs", flagValue("--jobs"), 1);
        } else if (matches("--csv")) {
            csvOut = flagValue("--csv");
        } else if (matches("--json")) {
            jsonOut = flagValue("--json");
        } else if (matches("--pareto")) {
            std::tie(adaptive.x, adaptive.y) =
                parseParetoFlag(flagValue("--pareto"));
            havePareto = true;
        } else if (matches("--refine")) {
            refineBudget =
                cli::parseUnsigned("--refine", flagValue("--refine"), 1);
        } else if (matches("--shard")) {
            std::tie(cfg.shardIndex, cfg.shardCount) =
                parseShardFlag(flagValue("--shard"));
        } else if (a == "--merge") {
            merge = true;
        } else if (merge && (a.empty() || a[0] != '-')) {
            shardFiles.push_back(a);
        } else {
            usage(argv[0]);
        }
    }
    (void)suiteSet;

    if (merge) {
        if (haveGrid || refineBudget || cfg.shardCount > 1)
            fatal("--merge takes shard JSON files only (no grid, "
                  "--refine or --shard)");
        if (shardFiles.empty()) {
            std::fprintf(stderr, "%s: --merge needs shard files\n",
                         argv[0]);
            usage(argv[0]);
        }
        std::vector<explore::SweepResult> shards;
        shards.reserve(shardFiles.size());
        for (const auto &f : shardFiles)
            shards.push_back(explore::sweepResultFromJsonFile(f));
        const auto result = explore::mergeShards(std::move(shards));
        if (!quiet)
            std::printf("merged %zu shard(s): %zu points\n",
                        shardFiles.size(), result.points.size());
        if (!csvOut.empty()) {
            if (csvOut == "-")
                explore::writeCsv(std::cout, result);
            else if (!explore::writeCsvFile(csvOut, result))
                return 1;
        }
        if (!jsonOut.empty()) {
            if (jsonOut == "-")
                explore::writeJson(std::cout, result);
            else if (!explore::writeJsonFile(jsonOut, result))
                return 1;
        }
        return result.totalFailures() ? 1 : 0;
    }

    if (!haveGrid) {
        std::fprintf(stderr, "%s: no grid (use --axis or --grid)\n",
                     argv[0]);
        usage(argv[0]);
    }
    cfg.grid.validate();

    const std::size_t npoints = cfg.grid.points();
    const auto suite = explore::suiteByName(cfg.suite);
    if (!quiet)
        std::printf("sweep: %zu point%s x %zu workloads (suite "
                    "'%s')\n",
                    npoints, npoints == 1 ? "" : "s", suite.size(),
                    cfg.suite.c_str());

    const auto progress = [&](std::size_t idx, std::size_t total,
                              const explore::SweepPointResult &p) {
        if (quiet)
            return;
        std::string bindings;
        for (const auto &[param, value] : p.point.bindings) {
            if (!bindings.empty())
                bindings += ' ';
            bindings += param + "=" + value;
        }
        std::printf("  [%zu/%zu] %s: cpi %.3f, icache miss %.1f%%, "
                    "%u failure%s\n",
                    idx + 1, total, bindings.c_str(), p.stats.cpi(),
                    100.0 * p.stats.icacheMissRatio(),
                    p.stats.failures, p.stats.failures == 1 ? "" : "s");
    };

    explore::SweepResult result;
    if (refineBudget) {
        adaptive.pointBudget = refineBudget;
        result = explore::runAdaptiveSweep(cfg, suite, adaptive, progress);
    } else {
        result = explore::runSweep(cfg, suite, progress);
        if (havePareto)
            explore::annotatePareto(result, adaptive.x, adaptive.y);
    }

    if (!quiet && result.pareto.present) {
        std::printf("pareto (%s vs %s): frontier",
                    result.pareto.x.metric.c_str(),
                    result.pareto.y.metric.c_str());
        for (const auto i : result.pareto.frontier)
            std::printf(" %zu", i);
        std::printf(", knee %zu\n", result.pareto.knee);
    }

    if (!quiet) {
        std::vector<std::string> header{"point"};
        for (const auto &ax : result.grid.axes)
            header.push_back(ax.param);
        for (const char *m : {"cpi", "icache miss", "fetch cost",
                              "cycles/branch"})
            header.push_back(m);
        stats::Table table("Sweep summary", header);
        for (const auto &p : result.points) {
            std::vector<std::string> row{std::to_string(p.index)};
            for (const auto &[param, value] : p.point.bindings)
                row.push_back(value);
            row.push_back(stats::Table::num(p.stats.cpi(), 3));
            row.push_back(stats::Table::pct(p.stats.icacheMissRatio()));
            row.push_back(stats::Table::num(p.stats.avgFetchCost(), 3));
            row.push_back(stats::Table::num(p.stats.cyclesPerBranch(), 3));
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }

    if (!csvOut.empty()) {
        if (csvOut == "-") {
            explore::writeCsv(std::cout, result);
        } else if (explore::writeCsvFile(csvOut, result)) {
            if (!quiet)
                std::printf("wrote %s\n", csvOut.c_str());
        } else {
            return 1;
        }
    }
    if (!jsonOut.empty()) {
        if (jsonOut == "-") {
            explore::writeJson(std::cout, result);
        } else if (explore::writeJsonFile(jsonOut, result)) {
            if (!quiet)
                std::printf("wrote %s\n", jsonOut.c_str());
        } else {
            return 1;
        }
    }

    const unsigned failures = result.totalFailures();
    if (failures) {
        std::fprintf(stderr, "mipsx-explore: %u workload failure%s "
                     "across the sweep\n",
                     failures, failures == 1 ? "" : "s");
        return 1;
    }
    return 0;
} catch (const cli::UsageError &e) {
    std::fprintf(stderr, "mipsx-explore: %s\n", e.what());
    return 2;
} catch (const SimError &e) {
    std::fprintf(stderr, "mipsx-explore: %s\n", e.what());
    return 1;
}
