/**
 * @file
 * Scenario: a miniature operating system on the pipelined machine.
 *
 * A system-space kernel at address 0 fields three kinds of events while
 * a user program runs:
 *   - `trap 1`  : a "syscall" that increments a kernel counter and is
 *                 skipped on return (via the chain squash flag);
 *   - overflow  : the kernel squash-skips the faulting instruction;
 *   - interrupts: delivered asynchronously from outside and serviced
 *                 transparently.
 *
 * Demonstrates the paper's exception machinery end to end: the halted
 * pipeline, the frozen PC chain, PSW/PSWold, and the restart sequence
 * of three special jumps (jpc).
 *
 * Note the division of labour, exactly as in the real software system:
 * the *user* text below is written with sequential semantics and lowered
 * by the code reorganizer; the *kernel* is hand-scheduled delayed code
 * (explicit no-ops in branch slots, a carefully timed PSW restore), the
 * way MIPS-X handlers had to be written.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "reorg/scheduler.hh"
#include "sim/machine.hh"

using namespace mipsx;

int
main()
{
    const char *source = R"(
        ; ------------------------- kernel -------------------------
        ; Hand-scheduled for the pipeline: 2 delay slots per branch.
        .systext 0
kentry: movfrs r22, psw
        addi   r23, r0, 0x800     ; cTrap?
        and    r23, r22, r23
        bz     r23, notsys
        nop
        nop
        ld     r20, nsys(r0)      ; --- syscall ---
        nop                       ; load delay
        addi   r20, r20, 1
        st     r20, nsys(r0)
        movfrs r21, pchain1       ; squash-skip the trap instruction
        li     r23, 0x80000000
        or     r21, r21, r23
        movtos pchain1, r21
        b      kret
        nop
        nop
notsys: addi   r23, r0, 0x100     ; cOvf?
        and    r23, r22, r23
        bz     r23, isintr
        nop
        nop
        ld     r20, novf(r0)      ; --- arithmetic overflow ---
        nop
        addi   r20, r20, 1
        st     r20, novf(r0)
        movfrs r21, pchain1       ; squash-skip the faulting add
        li     r23, 0x80000000
        or     r21, r21, r23
        movtos pchain1, r21
        b      kret
        nop
        nop
isintr: ld     r20, nirq(r0)      ; --- external interrupt ---
        nop
        addi   r20, r20, 1
        st     r20, nirq(r0)
        ; restart: restore the PSW (commits exactly when the first user
        ; word fetches) and reload the pipe with three special jumps.
kret:   movfrs r23, pswold
        movtos psw, r23
        jpc
        jpc
        jpc
        .sysdata 0x4000
nsys:   .word 0
novf:   .word 0
nirq:   .word 0
        ; ----------------------- user program ----------------------
        ; Sequential semantics; the reorganizer schedules it.
        .text
_start: addi r1, r0, 200
        addi r2, r0, 0
loop:   add  r2, r2, r1
        trap 1                    ; syscall every iteration
        addi r1, r1, -1
        bnz  r1, loop
        li   r3, 0x7fffffff
        add  r4, r3, r3           ; one deliberate overflow
        addi r5, r0, 55
        halt
)";

    const auto program = assembler::assemble(source, "os.s");
    // Lower the user text for the pipeline; the hand-scheduled kernel
    // (system text) passes through untouched.
    const auto scheduled = reorg::reorganize(program, {}, nullptr);

    sim::MachineConfig cfg;
    cfg.cpu.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ie |
        isa::psw_bits::ovfe;
    sim::Machine machine(cfg);
    machine.load(scheduled);

    auto &cpu = machine.cpu();
    cpu.reset(scheduled.entry);
    cpu.setGpr(isa::reg::sp, 0x70000);

    // Deliver an interrupt every 97 cycles from "outside".
    cycle_t last = 0;
    while (!cpu.stopped()) {
        if (cpu.stats().cycles >= last + 97) {
            cpu.raiseInterrupt();
            last = cpu.stats().cycles;
        }
        cpu.step();
    }

    const auto sum = cpu.gpr(2);
    std::printf("user program: %s\n",
                core::stopReasonName(cpu.stopReason()));
    std::printf("  loop sum            = %u (expected %u)\n", sum,
                200u * 201u / 2u);
    std::printf("  r5 (post-overflow)  = %u (expected 55)\n",
                cpu.gpr(5));
    std::printf("kernel counters (system space):\n");
    std::printf("  syscalls serviced   = %u\n",
                machine.readWord(AddressSpace::System, 0x4000));
    std::printf("  overflows skipped   = %u\n",
                machine.readWord(AddressSpace::System, 0x4001));
    std::printf("  interrupts serviced = %u\n",
                machine.readWord(AddressSpace::System, 0x4002));
    std::printf("pipeline: %llu cycles, %llu exceptions, squash FSM "
                "spent %llu cycles in EXCEPTION\n",
                static_cast<unsigned long long>(cpu.stats().cycles),
                static_cast<unsigned long long>(cpu.stats().exceptions),
                static_cast<unsigned long long>(cpu.squashFsm().occupancy(
                    core::SquashState::Exception)));

    const bool ok = cpu.stopReason() == core::StopReason::Halt &&
        sum == 200u * 201u / 2u && cpu.gpr(5) == 55 &&
        machine.readWord(AddressSpace::System, 0x4000) == 200 &&
        machine.readWord(AddressSpace::System, 0x4001) == 1;
    std::printf("%s\n", ok ? "OK" : "MISMATCH");
    return ok ? 0 : 1;
}
