/**
 * @file
 * Scenario: the machine the MIPS-X project was actually building —
 * "6-10 of these processors as the nodes in a shared memory
 * multiprocessor ... about two orders of magnitude more powerful than a
 * VAX 11/780."
 *
 * Runs the compute-bound parallel workload across CPU counts and prints
 * the scaling, bus occupancy and coherence traffic.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "mp/multi_machine.hh"
#include "reorg/scheduler.hh"
#include "workload/workload.hh"

using namespace mipsx;

int
main()
{
    const auto w = workload::parallelWorkloads().at(1); // ppoly
    std::printf("workload: %s — %s\n\n", w.name.c_str(),
                w.description.c_str());

    const auto prog = assembler::assemble(w.source, w.name + ".s");
    const auto sched = reorg::reorganize(prog, {}, nullptr);

    std::printf("%5s %10s %9s %11s %10s %8s %10s\n", "cpus", "cycles",
                "speedup", "efficiency", "bus busy", "invals", "x VAX");
    cycle_t base = 0;
    for (const unsigned cpus : {1u, 2u, 4u, 6u, 8u, 10u}) {
        mp::MultiMachineConfig mc;
        mc.cpus = cpus;
        mp::MultiMachine machine(mc);
        machine.load(sched);
        const auto r = machine.run();
        if (!r.allHalted) {
            std::printf("run failed on %u cpus\n", cpus);
            return 1;
        }
        // Self-check: the program compares its total against the baked
        // expectation and halts (vs fails) — allHalted is the check.
        if (cpus == 1)
            base = r.cycles;
        const double speedup = double(base) / double(r.cycles);
        const double busBusy =
            double(machine.bus().busyCycles()) / double(r.cycles);
        const double mips =
            double(r.instructions) / (double(r.cycles) / 20.0);
        std::printf("%5u %10llu %9.2f %10.1f%% %9.1f%% %8llu %9.0fx\n",
                    cpus, (unsigned long long)r.cycles, speedup,
                    100.0 * speedup / cpus, 100.0 * busBusy,
                    (unsigned long long)r.invalidations, mips / 0.5);
    }
    std::printf("\nThe 6-10 CPU rows crossing ~100x the VAX 11/780 "
                "(~0.5 MIPS) are the\nproject goal from the paper's "
                "introduction.\n");
    return 0;
}
