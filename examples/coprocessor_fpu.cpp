/**
 * @file
 * Scenario: floating-point work through the address-line coprocessor
 * interface — the paper's final design.
 *
 * A complex-number multiply kernel runs on the FPU (coprocessor 1):
 *   - ldf/stf move operands directly between memory and FPU registers
 *     (the one special coprocessor with direct memory access);
 *   - aluc cycles carry each FPU operation down the address pins while
 *     the memory system ignores the cycle;
 *   - movfrc reads the FPU status register into a CPU register, the
 *     idiom that replaced the removed branch-on-coprocessor.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "coproc/fpu.hh"
#include "reorg/scheduler.hh"
#include "sim/machine.hh"

using namespace mipsx;

namespace
{

word_t
bitsOf(float f)
{
    word_t w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

float
floatOf(word_t w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

std::string
fpu(coproc::FpuOp op, unsigned fd, unsigned fs)
{
    return strformat("        aluc c1, 0x%x   ; %s f%u, f%u\n",
                     coproc::fpuAluOp(op, fd, fs),
                     op == coproc::FpuOp::Fadd   ? "fadd"
                     : op == coproc::FpuOp::Fsub ? "fsub"
                     : op == coproc::FpuOp::Fmul ? "fmul"
                                                 : "fpu-op",
                     fd, fs);
}

} // namespace

int
main()
{
    // (a + bi) * (c + di) for 8 complex pairs.
    constexpr unsigned n = 8;
    float a[n], b[n], c[n], d[n];
    for (unsigned i = 0; i < n; ++i) {
        a[i] = 1.5f + i;
        b[i] = -0.25f * i;
        c[i] = 2.0f - 0.5f * i;
        d[i] = 0.75f + 0.1f * i;
    }

    std::string data = "        .data\n";
    auto emit = [&data](const char *label, const float *v, unsigned k) {
        data += strformat("%s:", label);
        for (unsigned i = 0; i < k; ++i)
            data += strformat("%s0x%08x", i ? ", " : " .word ",
                              bitsOf(v[i]));
        data += "\n";
    };
    emit("va", a, n);
    emit("vb", b, n);
    emit("vc", c, n);
    emit("vd", d, n);
    data += strformat("outre:  .space %u\noutim:  .space %u\n", n, n);

    using coproc::FpuOp;
    const std::string source = data + strformat(R"(
        .text
_start: la   r1, va
        la   r2, vb
        la   r3, vc
        la   r4, vd
        la   r5, outre
        la   r6, outim
        addi r7, r0, %u
cloop:  ldf  f1, 0(r1)       ; a
        ldf  f2, 0(r2)       ; b
        ldf  f3, 0(r3)       ; c
        ldf  f4, 0(r4)       ; d
        ; re = a*c - b*d
)", n) + "        aluc c1, 0x" +
        strformat("%x", coproc::fpuAluOp(FpuOp::Fmov, 5, 1)) +
        "   ; f5 = a\n" + fpu(FpuOp::Fmul, 5, 3) /* f5 = a*c */ +
        "        aluc c1, 0x" +
        strformat("%x", coproc::fpuAluOp(FpuOp::Fmov, 6, 2)) +
        "   ; f6 = b\n" + fpu(FpuOp::Fmul, 6, 4) /* f6 = b*d */ +
        fpu(FpuOp::Fsub, 5, 6) /* f5 = a*c - b*d */ + R"(
        stf  f5, 0(r5)
        ; im = a*d + b*c
)" + "        aluc c1, 0x" +
        strformat("%x", coproc::fpuAluOp(FpuOp::Fmov, 5, 1)) + "\n" +
        fpu(FpuOp::Fmul, 5, 4) /* f5 = a*d */ + "        aluc c1, 0x" +
        strformat("%x", coproc::fpuAluOp(FpuOp::Fmov, 6, 2)) + "\n" +
        fpu(FpuOp::Fmul, 6, 3) /* f6 = b*c */ +
        fpu(FpuOp::Fadd, 5, 6) /* f5 = a*d + b*c */ + R"(
        stf  f5, 0(r6)
        addi r1, r1, 1
        addi r2, r2, 1
        addi r3, r3, 1
        addi r4, r4, 1
        addi r5, r5, 1
        addi r6, r6, 1
        addi r7, r7, -1
        bnz  r7, cloop
        halt
)";

    const auto program = assembler::assemble(source, "complex.s");
    const auto scheduled = reorg::reorganize(program, {}, nullptr);
    sim::Machine machine{sim::MachineConfig{}};
    machine.load(scheduled);
    const auto result = machine.run();

    std::printf("run: %s, %llu cycles for %llu instructions\n",
                core::stopReasonName(result.reason),
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.instructions));

    bool ok = result.halted();
    std::printf("\n  %-22s %-12s %-12s\n", "(a+bi)(c+di)", "re", "im");
    for (unsigned i = 0; i < n; ++i) {
        const float re =
            floatOf(machine.readSymbol("outre", i));
        const float im =
            floatOf(machine.readSymbol("outim", i));
        const float wantRe = a[i] * c[i] - b[i] * d[i];
        const float wantIm = a[i] * d[i] + b[i] * c[i];
        std::printf("  pair %-17u %-12g %-12g\n", i, re, im);
        ok = ok && re == wantRe && im == wantIm;
    }
    std::printf("\n%s\n", ok ? "OK: all products exact"
                             : "MISMATCH");
    return ok ? 0 : 1;
}
