/**
 * @file
 * Quickstart: the whole MIPS-X toolchain in one page.
 *
 *  1. Assemble a program (sequential semantics — no delay slots).
 *  2. Validate it on the functional simulator (the golden model).
 *  3. Run the code reorganizer, which fills the branch delay slots and
 *     schedules the load delay for the pipelined machine.
 *  4. Run it on the cycle-accurate pipeline and read the statistics the
 *     paper's evaluation is built from.
 */

#include <cstdio>
#include <iostream>

#include "assembler/assembler.hh"
#include "isa/disasm.hh"
#include "reorg/scheduler.hh"
#include "sim/machine.hh"

using namespace mipsx;

int
main()
{
    // A small program: sum the words of an array.
    const char *source = R"(
        .data
arr:    .word 3, 1, 4, 1, 5, 9, 2, 6
sum:    .space 1
        .text
_start: la   r1, arr
        addi r2, r0, 8      ; count
        add  r3, r0, r0     ; sum
loop:   ld   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 1
        addi r2, r2, -1
        bnz  r2, loop
        st   r3, sum
        halt
)";

    // 1. Assemble.
    const auto program = assembler::assemble(source, "quickstart.s");
    std::printf("assembled %zu instruction words\n", program.textSize());

    // 2. Golden-model validation.
    {
        memory::MainMemory mem;
        const auto r = sim::runIss(program, mem);
        std::printf("functional run: %s after %llu instructions, "
                    "sum = %u\n",
                    r.reason == sim::IssStop::Halt ? "halted" : "FAILED",
                    static_cast<unsigned long long>(r.stats.steps),
                    mem.read(AddressSpace::User, program.symbol("sum")));
    }

    // 3. Reorganize for the pipeline (squash-optional, 2 delay slots).
    reorg::ReorgStats rstats;
    const auto scheduled = reorg::reorganize(program, {}, &rstats);
    std::printf("\nreorganizer: %llu branch slots, %llu filled from the "
                "target path,\n  %llu hoisted, %llu no-ops; %llu load "
                "hazards (%llu fixed by reordering)\n",
                static_cast<unsigned long long>(rstats.slotsTotal),
                static_cast<unsigned long long>(rstats.slotsFromTarget),
                static_cast<unsigned long long>(rstats.slotsHoisted),
                static_cast<unsigned long long>(rstats.slotsNop),
                static_cast<unsigned long long>(rstats.loadHazards),
                static_cast<unsigned long long>(rstats.loadReordered));

    std::printf("\nscheduled code:\n");
    const auto &text = scheduled.text();
    for (std::size_t i = 0; i < text.words.size(); ++i) {
        const addr_t pc = text.base + static_cast<addr_t>(i);
        std::printf("  %05x  %-28s%s\n", pc,
                    isa::disassemble(text.words[i], pc, true).c_str(),
                    text.slots[i] ? "  ; delay slot" : "");
    }

    // 4. Cycle-accurate run.
    sim::Machine machine{sim::MachineConfig{}};
    machine.load(scheduled);
    const auto result = machine.run();
    const auto &s = machine.cpu().stats();
    std::printf("\npipeline run: %s\n",
                core::stopReasonName(result.reason));
    std::printf("  sum             = %u\n",
                machine.readSymbol("sum"));
    std::printf("  instructions    = %llu\n",
                static_cast<unsigned long long>(s.committed));
    std::printf("  cycles          = %llu  (CPI %.2f)\n",
                static_cast<unsigned long long>(s.cycles), s.cpi());
    std::printf("  branches        = %llu taken %llu  "
                "(%.2f cycles/branch)\n",
                static_cast<unsigned long long>(s.branches),
                static_cast<unsigned long long>(s.branchesTaken),
                s.cyclesPerBranch());
    std::printf("  icache          = %.1f%% miss, fetch cost %.2f\n",
                100.0 * machine.cpu().icache().missRatio(),
                machine.cpu().icache().avgFetchCost());
    std::printf("  at 20 MHz this sustains %.1f MIPS\n", 20.0 / s.cpi());
    return result.halted() ? 0 : 1;
}
