/**
 * @file
 * Scenario: evaluating a branch-scheme decision for one workload —
 * the study an architect would run with this library before committing
 * a pipeline design, mirroring the paper's "Branches" section on a
 * single program (recursive quicksort).
 *
 * For each scheme the program is rescheduled and run on the matching
 * machine; the output is the per-scheme cost of its branches plus the
 * slot-fill provenance the reorganizer chose.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "reorg/scheduler.hh"
#include "sim/machine.hh"
#include "workload/workload.hh"

using namespace mipsx;

int
main()
{
    // Pick the quicksort workload from the suite.
    workload::Workload qsort;
    for (auto &w : workload::pascalWorkloads())
        if (w.name == "qsort")
            qsort = w;
    std::printf("workload: %s — %s\n\n", qsort.name.c_str(),
                qsort.description.c_str());

    const auto program = assembler::assemble(qsort.source, "qsort.s");
    const auto profile = workload::collectProfile(qsort);
    std::printf("profiled %zu static branches on the functional "
                "simulator\n\n", profile.size());

    std::printf("%-28s %8s %8s %10s %12s %8s\n", "scheme", "slots",
                "cycles", "cyc/branch", "squashed", "nops");
    for (const unsigned slots : {2u, 1u}) {
        for (const auto scheme :
             {reorg::BranchScheme::NoSquash,
              reorg::BranchScheme::AlwaysSquash,
              reorg::BranchScheme::SquashOptional}) {
            reorg::ReorgConfig rc;
            rc.scheme = scheme;
            rc.slots = slots;
            rc.paperFaithful = false;
            rc.prediction = reorg::Prediction::Profile;
            rc.profile = profile;

            reorg::ReorgStats rstats;
            const auto scheduled =
                reorg::reorganize(program, rc, &rstats);

            sim::MachineConfig mc;
            mc.cpu.branchDelay = slots;
            sim::Machine machine(mc);
            machine.load(scheduled);
            const auto result = machine.run();
            if (!result.halted()) {
                std::printf("workload failed under %s!\n",
                            reorg::branchSchemeName(scheme));
                return 1;
            }
            const auto &s = machine.cpu().stats();
            std::printf("%-28s %8u %8llu %10.2f %12llu %8llu\n",
                        reorg::branchSchemeName(scheme), slots,
                        static_cast<unsigned long long>(s.cycles),
                        s.cyclesPerBranch(),
                        static_cast<unsigned long long>(s.squashed),
                        static_cast<unsigned long long>(
                            s.committedNops));
        }
    }
    std::printf("\nThe decision the paper made: squash-optional with "
                "two slots — the best\n2-slot row above — because the "
                "1-slot machine's quick compare threatened\nthe 50ns "
                "cycle time.\n");
    return 0;
}
