; Sum an array and store the result — the "hello world" of MX32.
; Run:  mipsx-run examples/asm/sumarray.s
        .data
arr:    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8
exp:    .word 52
sum:    .space 1
        .text
_start: la   r1, arr
        addi r2, r0, 12     ; element count
        add  r3, r0, r0     ; accumulator
loop:   ld   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 1
        addi r2, r2, -1
        bnz  r2, loop
        st   r3, sum
        ld   r5, exp        ; self-check
        ld   r6, sum
        bne  r5, r6, bad
        halt
bad:    fail
