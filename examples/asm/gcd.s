; Euclid's algorithm by repeated subtraction, with a self-check.
; Run:  mipsx-run --trace examples/asm/gcd.s
        .data
result: .space 1
        .equ A, 1071
        .equ B, 462
        .equ G, 21
        .text
_start: addi r1, r0, A
        addi r2, r0, B
loop:   beq  r1, r2, done
        blt  r1, r2, swaps
        sub  r1, r1, r2     ; a > b: a -= b
        b    loop
swaps:  sub  r2, r2, r1     ; b > a: b -= a
        b    loop
done:   st   r1, result
        addi r3, r0, G
        bne  r1, r3, bad
        halt
bad:    fail
