; Mean of four singles through the FPU coprocessor (c1):
; ldf/stf move data directly between memory and FPU registers; aluc
; cycles carry the operations down the address pins.
; Run:  mipsx-run examples/asm/fpu_mean.s
        .data
vals:   .word 0x3f800000, 0x40000000, 0x40400000, 0x40800000 ; 1,2,3,4
quart:  .word 0x3e800000                                     ; 0.25
exp:    .word 0x40200000                                     ; 2.5
mean:   .space 1
        .text
_start: ldf  f1, vals
        ldf  f2, vals+1
        aluc c1, 0x22       ; fadd f1, f2
        ldf  f2, vals+2
        aluc c1, 0x22       ; fadd f1, f2
        ldf  f2, vals+3
        aluc c1, 0x22       ; fadd f1, f2   -> f1 = 10.0
        ldf  f2, quart
        aluc c1, 0x822      ; fmul f1, f2   -> f1 = 2.5
        stf  f1, mean
        ld   r1, mean
        ld   r2, exp
        bne  r1, r2, bad
        halt
bad:    fail
