/**
 * @file
 * Experiment E7 — cycles per instruction and sustained MIPS.
 *
 * Paper: with the instruction cache the average instruction fetch costs
 * 1.24 cycles; "when the memory system overhead is included (delays from
 * Icache and Ecache misses), the average instruction requires about 1.7
 * cycles meaning MIPS-X should have a sustained throughput above 11
 * MIPs" at the 20 MHz target (the first silicon ran at 16 MHz).
 *
 * The paper also notes its benchmarks fit inside the 64K-word Ecache, so
 * the 1.7 figure leaned on much larger (ATUM) traces for the Ecache
 * component. We report both the fits-in-Ecache configuration and a
 * pressured Ecache that reintroduces that overhead.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mipsx;
using namespace mipsx::bench;

namespace
{

void
reportConfig(const char *label, const sim::MachineConfig &mc,
             stats::Table &table, BenchJson &json, const char *key,
             bool big_code_only = false)
{
    const auto suite = big_code_only ? workload::bigCodeWorkloads()
                                     : workload::fullSuite();
    SuiteTiming timing;
    const auto agg = runSuite(suite, mc, {}, false, 0, &timing);
    if (agg.failures)
        fatal("suite failures in the CPI study");
    json.setSuite(key, agg);
    json.setTiming(std::string(key) + ".timing", timing);

    const double icachePerInstr =
        double(agg.icacheStalls) / agg.committed;
    const double ecachePerInstr =
        double(agg.ecacheStalls) / agg.committed;
    const double mips20 = 20.0 / agg.cpi();
    const double mips16 = 16.0 / agg.cpi();
    table.addRow({label, stats::Table::num(agg.cpi(), 2),
                  stats::Table::num(agg.avgFetchCost(), 2),
                  stats::Table::num(icachePerInstr, 3),
                  stats::Table::num(ecachePerInstr, 3),
                  stats::Table::pct(agg.noopFraction()),
                  stats::Table::num(mips20, 1),
                  stats::Table::num(mips16, 1)});
}

} // namespace

int
main()
{
    banner("E7", "CPI breakdown, memory bandwidth and sustained MIPS",
           "26 MWords/s average / 40 MWords/s peak bandwidth; fetch "
           "cost 1.24; ~1.7 cycles/instruction; >11 MIPS at 20 MHz");

    // The bandwidth argument that motivated the on-chip cache: "if we
    // assume that one instruction is fetched every cycle while, on
    // average, data is only fetched every third cycle, then MIPS-X will
    // have an average bandwidth of 26 MWords/s and a peak bandwidth of
    // 40 MWords/s." Measure the dynamic reference mix and redo the
    // arithmetic.
    {
        std::uint64_t steps = 0, loads = 0, stores = 0;
        for (const auto &w : workload::fullSuite()) {
            const auto prog = assembler::assemble(w.source, w.name);
            memory::MainMemory mem;
            const auto r = sim::runIss(prog, mem);
            if (r.reason != sim::IssStop::Halt)
                fatal("workload failed in the bandwidth census");
            steps += r.stats.steps;
            loads += r.stats.loads;
            stores += r.stats.stores;
        }
        const double dataPerInstr = double(loads + stores) / steps;
        const double avgBw = 20.0 * (1.0 + dataPerInstr);
        std::printf("dynamic reference mix: %.1f%% loads, %.1f%% "
                    "stores -> %.2f data words/instruction\n",
                    100.0 * loads / steps, 100.0 * stores / steps,
                    dataPerInstr);
        std::printf("at 20 MHz: average bandwidth %.0f MWords/s "
                    "(paper: 26), peak 40 MWords/s (1 instr + 1 data "
                    "per cycle)\n\n",
                    avgBw);
    }

    stats::Table table("Full-system CPI breakdown (whole suite)",
                       {"configuration", "cpi", "fetch cost",
                        "icache stall/instr", "ecache stall/instr",
                        "nop frac", "MIPS@20MHz", "MIPS@16MHz"});
    BenchJson json("cpi_breakdown");

    {
        sim::MachineConfig mc; // the paper's machine; suite fits Ecache
        reportConfig("64K-word Ecache (suite fits)", mc, table, json,
                     "ecache_64k");
    }
    {
        sim::MachineConfig mc; // the paper's population: big programs
        reportConfig("large-code programs only", mc, table, json,
                     "large_code", true);
    }
    {
        // Big programs whose I-cache refill traffic also pressures a
        // smaller Ecache — the regime the paper's ATUM-derived 1.7
        // cycles/instruction describes.
        sim::MachineConfig mc;
        mc.cpu.ecache.sizeWords = 2048;
        mc.cpu.ecache.missPenalty = 16;
        reportConfig("large-code + pressured Ecache (2K)", mc, table,
                     json, "large_code_ecache_2k", true);
    }
    {
        sim::MachineConfig mc;
        mc.cpu.ecache.sizeWords = 512;
        mc.cpu.ecache.missPenalty = 16;
        reportConfig("large-code + tiny Ecache (512)", mc, table, json,
                     "large_code_ecache_512", true);
    }
    {
        sim::MachineConfig mc;
        mc.cpu.icache.enabled = false;
        reportConfig("no I-cache (every fetch off-chip)", mc, table,
                     json, "no_icache");
    }

    table.print(std::cout);
    json.write();

    std::printf(
        "Shape to check: CPI sits between the I-cache-only bound and "
        "the paper's\n1.7 once Ecache pressure is added; removing the "
        "I-cache is catastrophic,\nwhich is the bandwidth argument that "
        "justified spending 2/3 of the\ntransistors on it.\n");
    return 0;
}
