/**
 * @file
 * Experiment E9 — the two control FSMs (Figures 3 and 4).
 *
 * Paper: "The control was nicely divided among the 4 main datapath
 * sections, with the only two finite state machines residing in the PC
 * unit. These FSMs handle instruction cache misses and instruction
 * squashing during exceptions and squashed branches. ... implemented as
 * simple shift registers with a very small amount of random logic and
 * occupy less than 0.2% of the total area of the chip."
 *
 * The harness prints the reconstructed state machines (our rendering of
 * Figures 3 and 4) and measures their dynamic state occupancy over the
 * suite, plus an exception-heavy run, demonstrating that the same tiny
 * squash FSM serves branches and exceptions.
 */

#include <cstdio>

#include "bench_util.hh"
#include "assembler/assembler.hh"
#include "core/cpu.hh"

using namespace mipsx;
using namespace mipsx::bench;

int
main()
{
    banner("E9 / Figures 3-4", "the squash and cache-miss FSMs",
           "two tiny FSMs in the PC unit; squashing branches add a "
           "single input to the exception FSM");

    std::printf(R"(
Squash FSM (Figure 3, reconstruction):
    RUN ---------------- branch squash ----------------> BRANCH_SQUASH
     |  \__________________ exception __________________> EXCEPTION
     |        (asserts Squash: no-op IF+RF;   EXCEPTION also asserts
     |         BRANCH_SQUASH asserts Squash)  Exception: no-op ALU+MEM)
     +<------- both squash states return to RUN next cycle -------+

Cache-miss FSM (Figure 4, reconstruction):
    RUN -- icache miss --> IMISS (w1 withheld; fetch back 2 words)
    RUN -- ecache late miss --> EMISS (re-execute MEM phase 2)
    IMISS/EMISS -- service done --> RUN
)");

    // Occupancy over the suite.
    const auto suite = workload::fullSuite();
    std::uint64_t occ[3] = {0, 0, 0};
    std::uint64_t mocc[3] = {0, 0, 0};
    for (const auto &w : suite) {
        const auto prog = assembler::assemble(w.source, w.name);
        const auto reorged = reorg::reorganize(prog, {}, nullptr);
        sim::Machine machine{sim::MachineConfig{}};
        machine.load(reorged);
        if (!machine.run().halted())
            fatal("workload failed in the FSM study");
        const auto &sq = machine.cpu().squashFsm();
        const auto &ms = machine.cpu().missFsm();
        for (unsigned s = 0; s < core::numSquashStates; ++s)
            occ[s] += sq.occupancy(static_cast<core::SquashState>(s));
        for (unsigned s = 0; s < core::numMissStates; ++s)
            mocc[s] += ms.occupancy(static_cast<core::MissState>(s));
    }

    stats::Table table("Squash FSM occupancy (whole suite)",
                       {"state", "cycles", "share"});
    const char *sqNames[] = {"RUN", "BRANCH_SQUASH", "EXCEPTION"};
    const double sqTotal = double(occ[0] + occ[1] + occ[2]);
    for (unsigned s = 0; s < 3; ++s)
        table.addRow({sqNames[s],
                      strformat("%llu", (unsigned long long)occ[s]),
                      stats::Table::pct(occ[s] / sqTotal, 2)});
    table.print(std::cout);

    stats::Table mtable("Cache-miss FSM occupancy (whole suite)",
                        {"state", "cycles", "share"});
    const char *msNames[] = {"RUN", "IMISS", "EMISS"};
    const double msTotal = double(mocc[0] + mocc[1] + mocc[2]);
    for (unsigned s = 0; s < 3; ++s)
        mtable.addRow({msNames[s],
                       strformat("%llu", (unsigned long long)mocc[s]),
                       stats::Table::pct(mocc[s] / msTotal, 2)});
    mtable.print(std::cout);

    // Exceptions exercise the same FSM: an interrupt-storm run.
    const char *handler = R"(
        .systext 0
handler: movfrs r23, pswold
        movtos psw, r23
        jpc
        jpc
        jpc
        .text
_start: addi r1, r0, 2000
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne.sq r1, r0, loop
        add  r2, r2, r1
        nop
        halt
)";
    const auto prog = assembler::assemble(handler, "storm.s");
    sim::MachineConfig mc;
    mc.cpu.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ie;
    sim::Machine machine(mc);
    machine.load(prog);
    auto &cpu = machine.cpu();
    cpu.reset(prog.entry);
    cycle_t last = 0;
    while (!cpu.stopped()) {
        if (cpu.stats().cycles >= last + 61) {
            cpu.raiseInterrupt();
            last = cpu.stats().cycles;
        }
        cpu.step();
    }
    std::printf("interrupt-storm run: %llu interrupts taken; squash FSM "
                "spent %llu cycles in\nEXCEPTION and %llu in "
                "BRANCH_SQUASH — one machine, both jobs (the paper's\n"
                "point), final sum %s.\n",
                (unsigned long long)cpu.stats().interrupts,
                (unsigned long long)cpu.squashFsm().occupancy(
                    core::SquashState::Exception),
                (unsigned long long)cpu.squashFsm().occupancy(
                    core::SquashState::BranchSquash),
                // Body sum 2000..1 plus the squash-slot add, which
                // executes on the 1999 taken iterations (values
                // 1999..1): 2001000 + 1999000.
                cpu.gpr(2) == 4000000u ? "correct" : "WRONG");
    return 0;
}
