/**
 * @file
 * Experiment E10 — path length and speed vs the register-memory CISC.
 *
 * Paper: "Comparison of Pascal programs with a VAX 11/780 shows that
 * MIPS-X executes about 25% more instructions but executes the programs
 * about 14 times faster for unoptimized code. ... when MIPS-X code is
 * compared to the Berkeley Pascal compiler, the path length is 80%
 * longer and the speedup is only 10 times".
 *
 * The VAX and both compilers are unavailable, so the CISC side is the
 * reference machine in workload/cisc_ref.hh: two-address, memory-operand
 * instructions hand-coded for the same computations (the hand coding
 * plays the role of a decent CISC compiler). Speed uses the paper-era
 * model: MIPS-X at 20 MHz and its measured CPI; the reference machine at
 * the VAX 11/780's ~0.5 MIPS sustained rate.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/cisc_ref.hh"

using namespace mipsx;
using namespace mipsx::bench;
using namespace mipsx::workload;

int
main()
{
    banner("E10", "dynamic path length vs a register-memory CISC",
           "MIPS-X path length 1.25x (Stanford) to 1.8x (Berkeley) of "
           "the VAX; ~10-14x faster");

    const auto suite = fullSuite();
    stats::Table table("Path length and modeled speed",
                       {"benchmark", "cisc instrs", "mx32 instrs",
                        "ratio", "mx32 cycles", "speedup (model)"});

    double ratioSum = 0, speedSum = 0;
    unsigned count = 0;
    for (const auto &bm : ciscBenchmarks()) {
        CiscVm vm;
        for (const auto &[a, v] : bm.init)
            vm.poke(a, v);
        const auto cisc = vm.run(bm.program);
        if (!cisc.halted || vm.peek(bm.resultAddr) != bm.expected)
            fatal("CISC reference failed self-check");

        const Workload *w = nullptr;
        for (const auto &cand : suite)
            if (cand.name == bm.name)
                w = &cand;
        if (!w)
            fatal("missing MX32 twin for a CISC benchmark");

        // Reorganized dynamic instruction count (no-ops included, as
        // the paper's static/dynamic comparisons count them).
        const auto run = runWorkload(*w);
        if (!run.passed)
            fatal("MX32 twin failed");

        const double ratio =
            double(run.pipeline.committed) / double(cisc.instructions);
        // Speed model: MX32 time = cycles / 20 MHz; VAX time =
        // instructions / 0.5 MIPS.
        const double mxTime = double(run.pipeline.cycles) / 20e6;
        const double vaxTime = double(cisc.instructions) / 0.5e6;
        const double speedup = vaxTime / mxTime;
        ratioSum += ratio;
        speedSum += speedup;
        ++count;

        table.addRow(
            {bm.name,
             strformat("%llu", (unsigned long long)cisc.instructions),
             strformat("%llu",
                       (unsigned long long)run.pipeline.committed),
             stats::Table::num(ratio, 2),
             strformat("%llu", (unsigned long long)run.pipeline.cycles),
             stats::Table::num(speedup, 1)});
    }
    table.print(std::cout);

    std::printf("mean path-length ratio %.2f (paper: 1.25-1.8); mean "
                "modeled speedup %.1fx\n(paper: 10-14x with the VAX at "
                "~0.5 MIPS).\n",
                ratioSum / count, speedSum / count);
    return 0;
}
