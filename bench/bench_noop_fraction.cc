/**
 * @file
 * Experiment E6 — the no-op fraction by language family.
 *
 * Paper (Status and Conclusions): "Simulations of our large Pascal
 * benchmarks show that 15.6% of all instructions are no-ops due to
 * unused branch delays or other pipeline interlocks that cannot be
 * optimized away. For Lisp, this number increases slightly to 18.3% due
 * to a larger number of jumps and many load-load interlocks caused by
 * chasing car and cdr chains."
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mipsx;
using namespace mipsx::bench;

int
main()
{
    banner("E6", "retired no-op fraction, by workload family",
           "Pascal 15.6%, Lisp 18.3% (Lisp higher: jumps + load-load "
           "chains)");

    stats::Table table("Dynamic no-op census (squash-optional schedule)",
                       {"family", "instructions", "no-ops", "nop frac",
                        "branch-slot nops", "load-delay nops",
                        "squashed", "wasted frac"});

    struct Row
    {
        const char *name;
        std::vector<workload::Workload> ws;
        const char *paper;
    };
    std::vector<Row> rows;
    rows.push_back({"pascal", workload::pascalWorkloads(), "15.6%"});
    rows.push_back({"lisp", workload::lispWorkloads(), "18.3%"});
    rows.push_back({"fp", workload::fpWorkloads(), "-"});

    BenchJson json("noop_fraction");
    double pascalFrac = 0, lispFrac = 0;
    for (const auto &row : rows) {
        SuiteTiming timing;
        const auto agg = bench::runSuite(row.ws, {}, {}, false, 0, &timing);
        if (agg.failures)
            fatal("suite failures in the no-op census");
        json.setSuite(row.name, agg);
        json.setTiming(std::string(row.name) + ".timing", timing);
        const double frac = agg.noopFraction();
        const double wasted =
            double(agg.committedNops + agg.squashed) / agg.committed;
        if (std::string(row.name) == "pascal")
            pascalFrac = frac;
        if (std::string(row.name) == "lisp")
            lispFrac = frac;
        table.addRow(
            {row.name,
             strformat("%llu", (unsigned long long)agg.committed),
             strformat("%llu", (unsigned long long)agg.committedNops),
             stats::Table::pct(frac),
             strformat("%llu", (unsigned long long)agg.nopsInBranchSlots),
             strformat("%llu", (unsigned long long)agg.nopsForLoadDelay),
             strformat("%llu", (unsigned long long)agg.squashed),
             stats::Table::pct(wasted)});
    }
    table.print(std::cout);
    json.write();

    std::printf("paper: pascal 15.6%%, lisp 18.3%%.  measured: pascal "
                "%s, lisp %s.\nShape to check: lisp > pascal, driven by "
                "load-delay no-ops (cdr chains)\nand jump slots.\n",
                stats::Table::pct(pascalFrac).c_str(),
                stats::Table::pct(lispFrac).c_str());
    return 0;
}
