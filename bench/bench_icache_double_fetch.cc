/**
 * @file
 * Experiment E2 — the instruction-cache double fetch.
 *
 * Paper: initial simulations of the 512-word, 8-way, 4-set, 16-word-block
 * sub-block cache gave miss rates "over 20%"; fetching back two words per
 * miss (the missed word and the next one) "almost halves the miss ratio,
 * driving down the cost of an instruction fetch to that of a single-cycle
 * miss". Final result with the large benchmarks: 12% miss rate, an
 * average instruction fetch of 1.24 cycles.
 *
 * Thin wrapper over the explore engine: the study is three small grids
 * (fetch-back width x cross-block allocation, the cache-off ablation,
 * and the replacement-policy ablation); the same sweeps are a single
 * `mipsx-explore` invocation each — see EXPERIMENTS.md "Running a
 * sweep".
 */

#include <cstdio>

#include "bench_util.hh"
#include "explore/explore.hh"

using namespace mipsx;
using namespace mipsx::bench;

namespace
{

const workload::SuiteStats &
pointStats(const explore::SweepResult &sweep,
           std::vector<std::pair<std::string, std::string>> bindings)
{
    const auto *p = sweep.find(bindings);
    if (!p)
        fatal("double-fetch study: grid point missing");
    if (p->stats.failures)
        fatal("suite failures in the I-cache study");
    return p->stats;
}

} // namespace

int
main()
{
    banner("E2", "I-cache fetch-back width (double fetch)",
           ">20% miss (1-word fetch) -> ~12% and 1.24 cycles/fetch "
           "(2-word fetch)");

    // The paper's miss ratios come from 50-270 KByte programs — far
    // larger than the 512-word cache. The big-code set is that
    // population; the small algorithmic workloads live in the cache
    // (their aggregate miss ratio is ~1%) and are reported separately
    // in bench_cpi_breakdown.
    explore::SweepConfig cfg;
    cfg.suite = "big-code";
    cfg.grid.axes = {{"icache.fetchWords", {"1", "2"}},
                     {"icache.allocCrossBlock", {"0", "1"}}};
    const auto fetch = explore::runSweep(cfg);

    explore::SweepConfig offCfg;
    offCfg.suite = "big-code";
    offCfg.grid.axes = {{"icache.enabled", {"0"}}};
    const auto off = explore::runSweep(offCfg);

    struct Row
    {
        const char *name;
        const workload::SuiteStats &agg;
    };
    const Row rows[] = {
        {"1-word fetch-back",
         pointStats(fetch, {{"icache.fetchWords", "1"},
                            {"icache.allocCrossBlock", "0"}})},
        {"2-word fetch-back (the design)",
         pointStats(fetch, {{"icache.fetchWords", "2"},
                            {"icache.allocCrossBlock", "0"}})},
        {"2-word + cross-block allocate",
         pointStats(fetch, {{"icache.fetchWords", "2"},
                            {"icache.allocCrossBlock", "1"}})},
        {"cache disabled (test feature)",
         pointStats(off, {{"icache.enabled", "0"}})},
    };

    stats::Table table(
        "Instruction cache fetch-back study (large-code programs)",
                       {"configuration", "miss ratio", "fetch cost",
                        "icache stalls/instr", "cpi"});
    BenchJson json("icache_double_fetch");
    unsigned rowIdx = 0;
    for (const auto &row : rows) {
        const auto &agg = row.agg;
        json.set(strformat("row%u.miss_ratio", rowIdx),
                 agg.icacheMissRatio());
        json.set(strformat("row%u.cpi", rowIdx), agg.cpi());
        ++rowIdx;
        table.addRow({row.name,
                      stats::Table::pct(agg.icacheMissRatio()),
                      stats::Table::num(agg.avgFetchCost(), 2),
                      stats::Table::num(double(agg.icacheStalls) /
                                            double(agg.committed),
                                        3),
                      stats::Table::num(agg.cpi(), 2)});
    }
    table.print(std::cout);

    // Replacement-policy ablation (the paper fixed the organisation but
    // the model exposes the remaining design freedom).
    explore::SweepConfig replCfg;
    replCfg.suite = "big-code";
    replCfg.grid.axes = {{"icache.repl", {"lru", "fifo", "random"}}};
    const auto repl = explore::runSweep(replCfg);

    stats::Table replTable(
        "Replacement-policy ablation (2-word fetch-back)",
        {"policy", "miss ratio", "fetch cost"});
    const std::pair<const char *, const char *> policies[] = {
        {"LRU", "lru"}, {"FIFO", "fifo"}, {"random", "random"}};
    for (const auto &[name, value] : policies) {
        const auto &agg = pointStats(repl, {{"icache.repl", value}});
        replTable.addRow({name, stats::Table::pct(agg.icacheMissRatio()),
                          stats::Table::num(agg.avgFetchCost(), 2)});
        json.set(std::string(name) + ".miss_ratio",
                 agg.icacheMissRatio());
    }
    replTable.print(std::cout);
    json.write();

    std::printf("Expected shape: the 2-word fetch-back roughly halves "
                "the 1-word miss ratio\nand pulls the average fetch "
                "cost toward the single-cycle-miss ideal.\n"
                "Reproduce as one sweep:\n  mipsx-explore --suite "
                "big-code --axis icache.fetchWords=1,2 \\\n      "
                "--axis icache.allocCrossBlock=0,1 --csv -\n");
    return 0;
}
