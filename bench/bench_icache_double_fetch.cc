/**
 * @file
 * Experiment E2 — the instruction-cache double fetch.
 *
 * Paper: initial simulations of the 512-word, 8-way, 4-set, 16-word-block
 * sub-block cache gave miss rates "over 20%"; fetching back two words per
 * miss (the missed word and the next one) "almost halves the miss ratio,
 * driving down the cost of an instruction fetch to that of a single-cycle
 * miss". Final result with the large benchmarks: 12% miss rate, an
 * average instruction fetch of 1.24 cycles.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mipsx;
using namespace mipsx::bench;

int
main()
{
    banner("E2", "I-cache fetch-back width (double fetch)",
           ">20% miss (1-word fetch) -> ~12% and 1.24 cycles/fetch "
           "(2-word fetch)");

    // The paper's miss ratios come from 50-270 KByte programs — far
    // larger than the 512-word cache. The big-code set is that
    // population; the small algorithmic workloads live in the cache
    // (their aggregate miss ratio is ~1%) and are reported separately
    // in bench_cpi_breakdown.
    const auto suite = workload::bigCodeWorkloads();
    stats::Table table(
        "Instruction cache fetch-back study (large-code programs)",
                       {"configuration", "miss ratio", "fetch cost",
                        "icache stalls/instr", "cpi"});

    struct Row
    {
        const char *name;
        unsigned fetchWords;
        bool allocCross;
        bool enabled;
    };
    const Row rows[] = {
        {"1-word fetch-back", 1, false, true},
        {"2-word fetch-back (the design)", 2, false, true},
        {"2-word + cross-block allocate", 2, true, true},
        {"cache disabled (test feature)", 1, false, false},
    };

    BenchJson json("icache_double_fetch");
    unsigned rowIdx = 0;
    for (const auto &row : rows) {
        sim::MachineConfig mc;
        mc.cpu.icache.fetchWords = row.fetchWords;
        mc.cpu.icache.allocCrossBlock = row.allocCross;
        mc.cpu.icache.enabled = row.enabled;
        const auto agg = runSuite(suite, mc);
        if (agg.failures)
            fatal("suite failures in the I-cache study");
        json.set(strformat("row%u.miss_ratio", rowIdx), agg.icacheMissRatio());
        json.set(strformat("row%u.cpi", rowIdx), agg.cpi());
        ++rowIdx;
        table.addRow({row.name,
                      stats::Table::pct(agg.icacheMissRatio()),
                      stats::Table::num(agg.avgFetchCost(), 2),
                      stats::Table::num(double(agg.icacheStalls) /
                                            double(agg.committed),
                                        3),
                      stats::Table::num(agg.cpi(), 2)});
    }
    table.print(std::cout);

    // Replacement-policy ablation (the paper fixed the organisation but
    // the model exposes the remaining design freedom).
    stats::Table repl("Replacement-policy ablation (2-word fetch-back)",
                      {"policy", "miss ratio", "fetch cost"});
    const std::pair<const char *, memory::IReplPolicy> policies[] = {
        {"LRU", memory::IReplPolicy::Lru},
        {"FIFO", memory::IReplPolicy::Fifo},
        {"random", memory::IReplPolicy::Random},
    };
    for (const auto &[name, pol] : policies) {
        sim::MachineConfig mc;
        mc.cpu.icache.repl = pol;
        const auto agg = runSuite(suite, mc);
        if (agg.failures)
            fatal("suite failures in the replacement ablation");
        repl.addRow({name, stats::Table::pct(agg.icacheMissRatio()),
                     stats::Table::num(agg.avgFetchCost(), 2)});
        json.set(std::string(name) + ".miss_ratio", agg.icacheMissRatio());
    }
    repl.print(std::cout);
    json.write();

    std::printf("Expected shape: the 2-word fetch-back roughly halves "
                "the 1-word miss ratio\nand pulls the average fetch "
                "cost toward the single-cycle-miss ideal.\n");
    return 0;
}
