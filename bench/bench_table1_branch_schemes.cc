/**
 * @file
 * Experiment E1 — reproduce Table 1: "Average Cycles per Branch
 * Instruction for Various Branch Schemes".
 *
 *     Branch Scheme            Cycles/Branch (paper)
 *     2-slot no squash         2.0
 *     2-slot always squash     1.5
 *     2-slot squash optional   1.3
 *     1-slot no squash         1.4
 *     1-slot always squash     1.3
 *     1-slot squash optional   1.1
 *
 * Plus the follow-ups in the text: the actual reorganizer first achieved
 * ~1.5 on small benchmarks with traditional optimization, and 1.27 with
 * the improved techniques on large benchmarks — our "squash optional +
 * profiling" row corresponds to the improved result.
 *
 * Methodology: the whole workload suite is reorganized under each scheme
 * (slots x strategy) and run on the matching pipeline (branch delay 1 or
 * 2). Cost accounting follows the paper's footnote: a branch costs 1
 * cycle plus every delay slot that was a no-op, was squashed, or
 * executed uselessly (filled from the path the branch did not take).
 *
 * Thin wrapper over the explore engine: the whole table is the single
 * grid slots x scheme x profiling (12 points), with always-squash's
 * both-direction squashing enabled through the fixed
 * `reorg.paperFaithful=0` base binding.
 */

#include <cstdio>

#include "bench_util.hh"
#include "explore/explore.hh"
#include "reorg/scheduler.hh"

using namespace mipsx;
using namespace mipsx::bench;
using reorg::BranchScheme;

namespace
{

double
paperValue(BranchScheme s, unsigned slots)
{
    if (slots == 2) {
        switch (s) {
          case BranchScheme::NoSquash: return 2.0;
          case BranchScheme::AlwaysSquash: return 1.5;
          case BranchScheme::SquashOptional: return 1.3;
        }
    }
    switch (s) {
      case BranchScheme::NoSquash: return 1.4;
      case BranchScheme::AlwaysSquash: return 1.3;
      case BranchScheme::SquashOptional: return 1.1;
    }
    return 0;
}

const workload::SuiteStats &
pointStats(const explore::SweepResult &sweep, const char *slots,
           const char *scheme, const char *profile)
{
    const auto *p = sweep.find({{"branch.slots", slots},
                                {"branch.scheme", scheme},
                                {"branch.profile", profile}});
    if (!p)
        fatal("Table 1 study: grid point missing");
    if (p->stats.failures)
        fatal("suite failures under a Table-1 configuration");
    return p->stats;
}

} // namespace

int
main()
{
    banner("E1 / Table 1", "average cycles per branch for six schemes",
           "2.0 / 1.5 / 1.3 (2-slot), 1.4 / 1.3 / 1.1 (1-slot); "
           "refined squash-optional result: 1.27");

    // The paper's static prediction was compile-time, "possibly with
    // profiling"; both columns are reported. always-squash needs both
    // squash directions, hence the paperFaithful base binding.
    explore::SweepConfig cfg;
    cfg.suite = "full";
    cfg.base = {{"reorg.paperFaithful", "0"}};
    cfg.grid.axes = {
        {"branch.slots", {"2", "1"}},
        {"branch.scheme",
         {"no-squash", "always-squash", "squash-optional"}},
        {"branch.profile", {"0", "1"}},
    };
    const auto sweep = explore::runSweep(cfg);

    stats::Table table(
        "Table 1: Average Cycles per Branch Instruction",
        {"branch scheme", "static pred", "profiled pred", "paper",
         "ctl-xfer (prof)"});
    BenchJson json("table1_branch_schemes");
    for (const unsigned slots : {2u, 1u}) {
        for (const auto scheme :
             {BranchScheme::NoSquash, BranchScheme::AlwaysSquash,
              BranchScheme::SquashOptional}) {
            const auto slotsStr = strformat("%u", slots);
            const char *schemeStr = reorg::branchSchemeName(scheme);
            const auto &aggStatic =
                pointStats(sweep, slotsStr.c_str(), schemeStr, "0");
            const auto &aggProf =
                pointStats(sweep, slotsStr.c_str(), schemeStr, "1");

            const std::string name =
                strformat("%u-slot %s", slots, schemeStr);
            json.set(name + ".cycles_per_branch_static",
                     aggStatic.cyclesPerBranch());
            json.set(name + ".cycles_per_branch_profiled",
                     aggProf.cyclesPerBranch());
            table.addRow(
                {name,
                 stats::Table::num(aggStatic.cyclesPerBranch(), 2),
                 stats::Table::num(aggProf.cyclesPerBranch(), 2),
                 stats::Table::num(paperValue(scheme, slots), 1),
                 stats::Table::num(aggProf.cyclesPerControl(), 2)});
        }
    }

    table.print(std::cout);
    json.write();

    // Static slot-fill provenance (the Gross-style reorganizer
    // statistics behind the table). The paper's a-priori worry for the
    // no-squash scheme: "we expected over 50% of the slots to remain
    // empty".
    // (Unconditional jumps always use hoist/target fills, so every
    // scheme shows some of each; the scheme governs the conditional
    // branches.)
    const auto suite = workload::fullSuite();
    stats::Table fills("Static slot filling by source (2 slots)",
                       {"scheme", "hoisted", "from target", "from fall",
                        "empty (no-op)"});
    for (const auto scheme :
         {BranchScheme::NoSquash, BranchScheme::AlwaysSquash,
          BranchScheme::SquashOptional}) {
        reorg::ReorgConfig rc;
        rc.scheme = scheme;
        rc.paperFaithful = false;
        reorg::ReorgStats st;
        for (const auto &w : suite) {
            const auto prog = assembler::assemble(w.source, w.name);
            reorg::reorganize(prog, rc, &st);
        }
        const double total = double(st.slotsTotal);
        fills.addRow({reorg::branchSchemeName(scheme),
                      stats::Table::pct(st.slotsHoisted / total),
                      stats::Table::pct(st.slotsFromTarget / total),
                      stats::Table::pct(st.slotsFromFall / total),
                      stats::Table::pct(st.slotsNop / total)});
    }
    fills.print(std::cout);

    std::printf("Expected shape: squashing beats no-squash; optional "
                "beats always;\n1-slot schemes beat their 2-slot "
                "counterparts; profiling helps squash-optional.\n"
                "The no-squash 'empty slots' row is the paper's "
                "expected >50%%.\n"
                "Reproduce as one sweep:\n  mipsx-explore --set "
                "reorg.paperFaithful=0 --axis branch.slots=2,1 \\\n"
                "      --axis branch.scheme=no-squash,always-squash,"
                "squash-optional \\\n      --axis branch.profile=0,1 "
                "--csv -\n");
    return 0;
}
