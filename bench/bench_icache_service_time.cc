/**
 * @file
 * Experiment E3 — miss service time vs miss ratio.
 *
 * Paper: "the performance of the cache was more sensitive to the miss
 * service time than the miss ratio. ... By placing the tag and valid-bit
 * stores in the datapath close to the PC unit a 2-cycle miss could be
 * realized. This lengthened the datapath by the number of cache tags and
 * meant that we could not have smaller block sizes ... However, the
 * benefits of having fewer cache miss cycles far outweighed the slightly
 * lower miss rates achievable by having smaller blocks."
 *
 * The sweep crosses block size (smaller blocks -> more tags -> the tags
 * no longer fit in the datapath -> a 3-cycle miss) with the miss service
 * time, holding the 512-word capacity and 8-way associativity constant.
 * The paper's tradeoff is the comparison between:
 *   - small blocks + 3-cycle miss (tags far away), and
 *   - 16-word blocks + 2-cycle miss (the design point).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace mipsx;
using namespace mipsx::bench;

int
main()
{
    banner("E3", "I-cache miss service time vs block size",
           "2-cycle miss with 16-word blocks beats lower-miss-rate "
           "smaller blocks at 3 cycles");

    const auto suite = workload::bigCodeWorkloads();
    BenchJson json("icache_service_time");
    stats::Table table(
        "Average fetch cost (cycles), 512 words, 8-way, large-code programs",
        {"block words", "tags", "miss ratio", "penalty=1", "penalty=2",
         "penalty=3"});

    for (const unsigned block : {4u, 8u, 16u, 32u}) {
        const unsigned sets = 512 / (8 * block);
        std::vector<std::string> cells;
        cells.push_back(strformat("%u", block));
        cells.push_back(strformat("%u", sets * 8));
        double miss_ratio = 0;
        std::vector<std::string> costs;
        for (const unsigned penalty : {1u, 2u, 3u}) {
            sim::MachineConfig mc;
            mc.cpu.icache.blockWords = block;
            mc.cpu.icache.sets = sets;
            mc.cpu.icache.missPenalty = penalty;
            const auto agg = runSuite(suite, mc);
            if (agg.failures)
                fatal("suite failures in the service-time study");
            miss_ratio = agg.icacheMissRatio();
            costs.push_back(stats::Table::num(agg.avgFetchCost(), 3));
            json.set(strformat("block%u.penalty%u.fetch_cost", block,
                               penalty),
                     agg.avgFetchCost());
        }
        cells.push_back(stats::Table::pct(miss_ratio));
        for (auto &c : costs)
            cells.push_back(std::move(c));
        table.addRow(std::move(cells));
    }
    table.print(std::cout);

    // Associativity sweep at the design's 16-word blocks (the axis the
    // companion I-cache paper explores; the chip chose 8-way x 4 sets).
    stats::Table assoc("Associativity sweep (512 words, 16-word blocks, "
                       "penalty 2)",
                       {"ways", "sets", "miss ratio", "fetch cost"});
    for (const unsigned ways : {1u, 2u, 4u, 8u}) {
        sim::MachineConfig mc;
        mc.cpu.icache.ways = ways;
        mc.cpu.icache.sets = 512 / (16 * ways);
        const auto agg = runSuite(suite, mc);
        if (agg.failures)
            fatal("suite failures in the associativity sweep");
        assoc.addRow({strformat("%u", ways),
                      strformat("%u", 512 / (16 * ways)),
                      stats::Table::pct(agg.icacheMissRatio()),
                      stats::Table::num(agg.avgFetchCost(), 3)});
        json.set(strformat("ways%u.miss_ratio", ways),
                 agg.icacheMissRatio());
    }
    assoc.print(std::cout);
    json.write();

    std::printf(
        "Reading the block table the paper's way: compare 'small blocks "
        "@ penalty 3'\n(tags pushed out of the datapath) against "
        "'16-word blocks @ penalty 2'\n(the design): the service-time "
        "advantage dominates the miss-ratio advantage.\n");
    return 0;
}
