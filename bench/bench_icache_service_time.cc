/**
 * @file
 * Experiment E3 — miss service time vs miss ratio.
 *
 * Paper: "the performance of the cache was more sensitive to the miss
 * service time than the miss ratio. ... By placing the tag and valid-bit
 * stores in the datapath close to the PC unit a 2-cycle miss could be
 * realized. This lengthened the datapath by the number of cache tags and
 * meant that we could not have smaller block sizes ... However, the
 * benefits of having fewer cache miss cycles far outweighed the slightly
 * lower miss rates achievable by having smaller blocks."
 *
 * Thin wrapper over the explore engine. Block size and set count move
 * together (capacity is held at 512 words, 8 ways), which is exactly
 * what the compound `icache.geometry` axis encodes; crossing it with
 * `icache.missPenalty` is the paper's whole tradeoff as one grid.
 */

#include <cstdio>

#include "bench_util.hh"
#include "explore/explore.hh"

using namespace mipsx;
using namespace mipsx::bench;

namespace
{

const workload::SuiteStats &
pointStats(const explore::SweepResult &sweep,
           std::vector<std::pair<std::string, std::string>> bindings)
{
    const auto *p = sweep.find(bindings);
    if (!p)
        fatal("service-time study: grid point missing");
    if (p->stats.failures)
        fatal("suite failures in the service-time study");
    return p->stats;
}

} // namespace

int
main()
{
    banner("E3", "I-cache miss service time vs block size",
           "2-cycle miss with 16-word blocks beats lower-miss-rate "
           "smaller blocks at 3 cycles");

    // 512 words, 8 ways throughout: sets = 512 / (8 * blockWords).
    const std::pair<unsigned, const char *> geometries[] = {
        {4, "16x8x4"}, {8, "8x8x8"}, {16, "4x8x16"}, {32, "2x8x32"}};

    explore::SweepConfig cfg;
    cfg.suite = "big-code";
    cfg.grid.axes = {{"icache.geometry",
                      {"16x8x4", "8x8x8", "4x8x16", "2x8x32"}},
                     {"icache.missPenalty", {"1", "2", "3"}}};
    const auto sweep = explore::runSweep(cfg);

    BenchJson json("icache_service_time");
    stats::Table table(
        "Average fetch cost (cycles), 512 words, 8-way, large-code programs",
        {"block words", "tags", "miss ratio", "penalty=1", "penalty=2",
         "penalty=3"});

    for (const auto &[block, geometry] : geometries) {
        const unsigned sets = 512 / (8 * block);
        std::vector<std::string> cells;
        cells.push_back(strformat("%u", block));
        cells.push_back(strformat("%u", sets * 8));
        double miss_ratio = 0;
        std::vector<std::string> costs;
        for (const unsigned penalty : {1u, 2u, 3u}) {
            const auto &agg = pointStats(
                sweep, {{"icache.geometry", geometry},
                        {"icache.missPenalty", strformat("%u", penalty)}});
            miss_ratio = agg.icacheMissRatio();
            costs.push_back(stats::Table::num(agg.avgFetchCost(), 3));
            json.set(strformat("block%u.penalty%u.fetch_cost", block,
                               penalty),
                     agg.avgFetchCost());
        }
        cells.push_back(stats::Table::pct(miss_ratio));
        for (auto &c : costs)
            cells.push_back(std::move(c));
        table.addRow(std::move(cells));
    }
    table.print(std::cout);

    // Associativity sweep at the design's 16-word blocks (the axis the
    // companion I-cache paper explores; the chip chose 8-way x 4 sets).
    explore::SweepConfig assocCfg;
    assocCfg.suite = "big-code";
    assocCfg.grid.axes = {{"icache.geometry",
                           {"32x1x16", "16x2x16", "8x4x16", "4x8x16"}}};
    const auto assocSweep = explore::runSweep(assocCfg);

    stats::Table assoc("Associativity sweep (512 words, 16-word blocks, "
                       "penalty 2)",
                       {"ways", "sets", "miss ratio", "fetch cost"});
    for (const unsigned ways : {1u, 2u, 4u, 8u}) {
        const unsigned sets = 512 / (16 * ways);
        const auto &agg = pointStats(
            assocSweep,
            {{"icache.geometry", strformat("%ux%ux16", sets, ways)}});
        assoc.addRow({strformat("%u", ways), strformat("%u", sets),
                      stats::Table::pct(agg.icacheMissRatio()),
                      stats::Table::num(agg.avgFetchCost(), 3)});
        json.set(strformat("ways%u.miss_ratio", ways),
                 agg.icacheMissRatio());
    }
    assoc.print(std::cout);
    json.write();

    std::printf(
        "Reading the block table the paper's way: compare 'small blocks "
        "@ penalty 3'\n(tags pushed out of the datapath) against "
        "'16-word blocks @ penalty 2'\n(the design): the service-time "
        "advantage dominates the miss-ratio advantage.\n"
        "Reproduce as one sweep:\n  mipsx-explore --suite big-code "
        "--axis icache.geometry=16x8x4,8x8x8,4x8x16,2x8x32 \\\n      "
        "--axis icache.missPenalty=1,2,3 --csv -\n");
    return 0;
}
