/**
 * @file
 * Experiment E5 — branch cache vs static prediction.
 *
 * Paper: "There were two prediction algorithms tried: branch cache, and
 * static prediction. The branch cache was quickly discarded when we
 * discovered that it had to be fairly large (much greater than 16
 * entries) to get a high hit rate. ... Besides, it never did much better
 * than static prediction and was much more complex."
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "reorg/predictor.hh"

using namespace mipsx;
using namespace mipsx::bench;
using namespace mipsx::reorg;

int
main()
{
    banner("E5", "branch cache size sweep vs static prediction",
           "branch cache needs >>16 entries and never beats static "
           "prediction by much");

    const auto suite = workload::fullSuite();

    // Build the model set.
    AlwaysTakenModel alwaysTaken;
    BackwardTakenModel backward;
    ProfileModel profiled;
    std::vector<std::unique_ptr<BranchCacheModel>> caches;
    for (const unsigned entries : {4u, 8u, 16u, 32u, 64u, 128u, 256u})
        caches.push_back(std::make_unique<BranchCacheModel>(entries, 2));

    // Two passes over the dynamic branch stream: the first trains the
    // profile, the second evaluates everything.
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto &w : suite) {
            const auto prog = assembler::assemble(w.source, w.name);
            memory::MainMemory mem;
            mem.loadProgram(prog);
            sim::Iss iss({}, mem);
            iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
            iss.setBranchHook([&](const sim::BranchEvent &ev) {
                if (pass == 0) {
                    profiled.addProfile(ev);
                    return;
                }
                alwaysTaken.record(ev);
                backward.record(ev);
                profiled.record(ev);
                for (auto &bc : caches)
                    bc->record(ev);
            });
            iss.reset(prog.entry);
            iss.setGpr(isa::reg::sp, 0x70000);
            if (iss.run() != sim::IssStop::Halt)
                fatal("workload failed in the prediction study");
        }
    }

    stats::Table table("Prediction accuracy over the suite's branches",
                       {"predictor", "accuracy", "bc hit rate"});
    table.addRow({"static always-taken",
                  stats::Table::pct(alwaysTaken.accuracy()), "-"});
    table.addRow({"static backward-taken",
                  stats::Table::pct(backward.accuracy()), "-"});
    table.addRow({"static profiled",
                  stats::Table::pct(profiled.accuracy()), "-"});
    for (const auto &bc : caches) {
        table.addRow({strformat("branch cache, %u entries",
                                bc->entries()),
                      stats::Table::pct(bc->accuracy()),
                      stats::Table::pct(bc->hitRate())});
    }
    table.print(std::cout);

    std::printf("branches observed: %llu\n",
                (unsigned long long)backward.seen());
    std::printf(
        "Expected shape: small branch caches (<=16 entries) lose to "
        "static\nprediction; the cache only catches up once it is much "
        "larger, and never\npulls far ahead — while costing area the "
        "512-word I-cache wanted.\n");
    return 0;
}
