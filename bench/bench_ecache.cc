/**
 * @file
 * Experiment E11 — the external cache and the late-miss loop.
 *
 * Paper: data references and I-cache refills go to a 64K-word external
 * cache whose hit/miss is known only at the start of WB (the "late
 * miss"); a miss re-executes phase 2 of MEM until main memory responds
 * over the shared bus. The benchmarks "fit entirely" in the Ecache, so
 * the paper used much larger (ATUM) traces to derive the Ecache effects.
 *
 * The harness sweeps Ecache size x line size x miss penalty against the
 * synthetic locality traces (standing in for ATUM) and then reports the
 * suite-driven contribution of the Ecache to CPI.
 */

#include <cstdio>

#include "bench_util.hh"
#include "memory/ecache.hh"
#include "workload/trace_gen.hh"

using namespace mipsx;
using namespace mipsx::bench;

int
main()
{
    banner("E11", "Ecache organisation sweep (synthetic ATUM stand-in)",
           "64K words backing the Icache + data; late-miss retry until "
           "the shared bus answers");

    constexpr std::uint64_t refs = 2'000'000;

    stats::Table table("Ecache miss ratio / avg stall per reference",
                       {"size (words)", "line=2", "line=4", "line=8",
                        "line=16"});
    for (const unsigned sizeK : {4u, 16u, 64u, 256u}) {
        std::vector<std::string> cells{strformat("%uK", sizeK)};
        for (const unsigned line : {2u, 4u, 8u, 16u}) {
            memory::ECacheConfig cfg;
            cfg.sizeWords = sizeK * 1024;
            cfg.lineWords = line;
            memory::ECache ec(cfg);
            workload::TraceGenerator gen(workload::TraceConfig{});
            for (std::uint64_t i = 0; i < refs; ++i) {
                const auto r = gen.next();
                ec.access(r.addr, r.write);
            }
            cells.push_back(strformat(
                "%s / %.2f",
                stats::Table::pct(ec.missRatio()).c_str(),
                double(ec.stallCycles()) / double(refs)));
        }
        table.addRow(std::move(cells));
    }
    table.print(std::cout);

    BenchJson json("ecache");
    stats::Table pen("Late-miss penalty sweep (64K words, 4-word lines)",
                     {"miss penalty (cycles)", "avg stall/ref",
                      "suite cpi"});
    const auto suite = workload::fullSuite();
    for (const unsigned penalty : {8u, 16u, 32u, 64u}) {
        memory::ECacheConfig cfg;
        cfg.missPenalty = penalty;
        memory::ECache ec(cfg);
        workload::TraceGenerator gen(workload::TraceConfig{});
        for (std::uint64_t i = 0; i < refs / 4; ++i) {
            const auto r = gen.next();
            ec.access(r.addr, r.write);
        }
        sim::MachineConfig mc;
        mc.cpu.ecache.missPenalty = penalty;
        mc.cpu.ecache.sizeWords = 1024; // pressured so the suite misses
        const auto agg = runSuite(suite, mc);
        if (agg.failures)
            fatal("suite failures in the Ecache study");
        json.set(strformat("penalty%u.cpi", penalty), agg.cpi());
        pen.addRow({strformat("%u", penalty),
                    stats::Table::num(double(ec.stallCycles()) /
                                          double(refs / 4),
                                      2),
                    stats::Table::num(agg.cpi(), 2)});
    }
    pen.print(std::cout);
    json.write();

    // Write-policy ablation (Smith 1982, which the paper builds on):
    // write-through pushes every store across the shared bus; copy-back
    // only moves dirty victims. The difference is what the planned
    // multiprocessor's single bus would have had to carry.
    stats::Table wp("Write policy (64K words, synthetic trace)",
                    {"policy", "miss ratio", "stall/ref",
                     "bus traffic/ref"});
    for (const bool wt : {false, true}) {
        memory::ECacheConfig cfg;
        cfg.writeThrough = wt;
        memory::ECache ec(cfg);
        workload::TraceGenerator gen(workload::TraceConfig{});
        for (std::uint64_t i = 0; i < refs; ++i) {
            const auto r = gen.next();
            ec.access(r.addr, r.write);
        }
        wp.addRow({wt ? "write-through (4-deep buffer)" : "copy-back",
                   stats::Table::pct(ec.missRatio()),
                   stats::Table::num(double(ec.stallCycles()) / refs, 2),
                   stats::Table::num(
                       double(ec.memoryTrafficCycles()) / refs, 2)});
    }
    wp.print(std::cout);

    std::printf("Expected shape: miss ratio falls with size and (for "
                "these locality knobs)\nwith longer lines; the late-miss "
                "penalty scales the stall contribution\nlinearly — the "
                "reason the paper guarded the address-out path so hard.\n"
                "Write-through trades processor stalls for bus traffic — "
                "acceptable for one\nCPU, hostile to the shared-bus "
                "multiprocessor (see bench_multiprocessor).\n");
    return 0;
}
