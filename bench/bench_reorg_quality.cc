/**
 * @file
 * Experiment E13 — scheduler quality: Table 1 extended with a
 * scheduler dimension.
 *
 * The paper's reorganizer numbers (Table 1, and the no-op fractions in
 * Status and Conclusions) are all products of one heuristic scheduler.
 * This study sweeps the scheduling backend (heuristic / list /
 * branch-and-bound optimal) against the branch scheme and reports, per
 * point:
 *
 *  - static quality: slot-fill rate and load no-ops of the emitted
 *    schedule (reorganizer counters, no simulation involved);
 *  - dynamic quality: cycles, CPI and retired no-op fraction over the
 *    full workload suite.
 *
 * The optimal backend exhaustively minimizes per-block load no-ops for
 * blocks up to 12 nodes (larger blocks fall back to list scheduling),
 * so its static load no-op count is the quality floor the heuristics
 * are measured against.
 *
 * Results land in BENCH_reorg_quality.json.
 */

#include <cstdio>

#include "bench_util.hh"
#include "explore/explore.hh"
#include "reorg/scheduler.hh"

using namespace mipsx;
using namespace mipsx::bench;
using reorg::SchedulerKind;

namespace
{

/** Aggregate static reorganizer counters for one configuration. */
reorg::ReorgStats
staticStats(SchedulerKind kind, reorg::BranchScheme scheme)
{
    reorg::ReorgConfig rc;
    rc.scheduler = kind;
    rc.scheme = scheme;
    reorg::ReorgStats agg;
    for (const auto &w : workload::fullSuite()) {
        const auto p = assembler::assemble(w.source, w.name);
        reorg::ReorgStats st;
        reorg::reorganize(p, rc, &st);
        agg.slotsTotal += st.slotsTotal;
        agg.slotsNop += st.slotsNop;
        agg.loadHazards += st.loadHazards;
        agg.loadReordered += st.loadReordered;
        agg.loadNops += st.loadNops;
        agg.dagBlocks += st.dagBlocks;
        agg.dagOptimalExact += st.dagOptimalExact;
        agg.dagOptimalFallback += st.dagOptimalFallback;
    }
    return agg;
}

} // namespace

int
main()
{
    banner("E13", "schedule quality by backend x branch scheme",
           "the paper's single heuristic reorganizer, extended: how "
           "close does it come to an optimal block schedule?");

    explore::SweepConfig cfg;
    cfg.suite = "full";
    cfg.grid.axes = {
        {"reorg.scheduler", {"heuristic", "list", "optimal"}},
        {"branch.scheme", {"no-squash", "squash-optional"}},
    };
    const auto sweep = explore::runSweep(cfg);

    stats::Table table("Schedule quality (full suite)",
                       {"scheduler", "scheme", "slot fill", "load nops",
                        "cycles", "cpi", "noop frac"});
    BenchJson json("reorg_quality");

    const struct
    {
        const char *name;
        SchedulerKind kind;
    } schedulers[] = {
        {"heuristic", SchedulerKind::Heuristic},
        {"list", SchedulerKind::List},
        {"optimal", SchedulerKind::Optimal},
    };
    const struct
    {
        const char *name;
        reorg::BranchScheme scheme;
    } schemes[] = {
        {"no-squash", reorg::BranchScheme::NoSquash},
        {"squash-optional", reorg::BranchScheme::SquashOptional},
    };

    std::uint64_t optimalLoadNops = 0, worstLoadNops = 0;
    for (const auto &sched : schedulers) {
        for (const auto &scheme : schemes) {
            const auto *p =
                sweep.find({{"reorg.scheduler", sched.name},
                            {"branch.scheme", scheme.name}});
            if (!p)
                fatal("scheduler-quality study: grid point missing");
            if (p->stats.failures)
                fatal("suite failures under a scheduler configuration");
            const auto st = staticStats(sched.kind, scheme.scheme);

            const std::string key =
                strformat("%s.%s", sched.name, scheme.name);
            json.setSuite(key, p->stats);
            json.setEnergy(key + ".energy", p->stats);
            json.set(key + ".slot_fill_ratio", st.slotFillRatio());
            json.set(key + ".static_slots", st.slotsTotal);
            json.set(key + ".static_slot_nops", st.slotsNop);
            json.set(key + ".static_load_nops", st.loadNops);
            json.set(key + ".dag_blocks", st.dagBlocks);
            json.set(key + ".dag_optimal_exact", st.dagOptimalExact);
            json.set(key + ".dag_optimal_fallback",
                     st.dagOptimalFallback);

            if (sched.kind == SchedulerKind::Optimal)
                optimalLoadNops += st.loadNops;
            else
                worstLoadNops = std::max(worstLoadNops, st.loadNops);

            table.addRow(
                {sched.name, scheme.name,
                 stats::Table::pct(st.slotFillRatio()),
                 strformat("%llu",
                           (unsigned long long)st.loadNops),
                 strformat("%llu", (unsigned long long)p->stats.cycles),
                 strformat("%.3f", p->stats.cpi()),
                 stats::Table::pct(p->stats.noopFraction())});
        }
    }
    table.print(std::cout);
    json.write();

    std::printf("\nThe optimal backend's load no-ops (%llu summed over "
                "both schemes) bound the\nheuristics from below; the "
                "gap to the worst backend (%llu per scheme) is the\n"
                "headroom Gross-Hennessy-style postpass scheduling "
                "leaves on this suite.\n",
                (unsigned long long)optimalLoadNops,
                (unsigned long long)worstLoadNops);
    return 0;
}
