/**
 * @file
 * Experiment E4 — the quick compare.
 *
 * Paper: a comparator on the register-file outputs could resolve
 * equality and sign tests at the end of RF, cutting the branch delay to
 * one — but only for those conditions ("about 80% of all branches can be
 * converted into quick compares" per Katevenis; the team measured
 * 70-80%). It was dropped because the comparator sits after the bypass
 * buses and would have stretched the cycle (the final chip measured
 * ~20ns from branch-signal generation to driving the PC bus — already
 * critical).
 *
 * The harness reports (a) the dynamic fraction of branches that are
 * quick-compareable (equality tests, or sign tests against r0), and
 * (b) the cycle count of the 1-delay machine vs the 2-delay machine, so
 * the cycles-per-branch gain can be weighed against a cycle-time
 * stretch exactly the way the design team did.
 */

#include <cstdio>

#include "bench_util.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "sim/machine.hh"

using namespace mipsx;
using namespace mipsx::bench;

int
main()
{
    banner("E4", "quick-compare coverage and the 1-slot machine",
           "70-80% of branches are quick-compareable; dropped for "
           "cycle-time risk");

    const auto suite = workload::fullSuite();

    // (a) Dynamic census of branch conditions.
    std::uint64_t total = 0, quick = 0;
    std::map<std::string, std::uint64_t> byCond;
    for (const auto &w : suite) {
        const auto prog = assembler::assemble(w.source, w.name);
        memory::MainMemory mem;
        mem.loadProgram(prog);
        sim::Iss iss({}, mem);
        iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
        iss.setBranchHook([&](const sim::BranchEvent &ev) {
            if (!ev.conditional)
                return;
            const auto in =
                isa::decode(mem.read(AddressSpace::User, ev.pc));
            ++total;
            ++byCond[isa::branchName(in.cond)];
            const bool equality = in.cond == isa::BranchCond::Eq ||
                in.cond == isa::BranchCond::Ne ||
                in.cond == isa::BranchCond::T; // trivially (r0 == r0)
            const bool signTest = (in.cond == isa::BranchCond::Lt ||
                                   in.cond == isa::BranchCond::Ge) &&
                (in.rs1 == 0 || in.rs2 == 0);
            if (equality || signTest)
                ++quick;
        });
        iss.reset(prog.entry);
        iss.setGpr(isa::reg::sp, 0x70000);
        if (iss.run() != sim::IssStop::Halt)
            fatal("workload failed in the quick-compare census");
    }

    stats::Table census("Dynamic branch-condition census",
                        {"condition", "count", "share"});
    for (const auto &[name, count] : byCond) {
        census.addRow({name, strformat("%llu",
                                       (unsigned long long)count),
                       stats::Table::pct(double(count) / total)});
    }
    census.print(std::cout);
    std::printf("quick-compareable branches (eq/ne or sign vs r0): "
                "%s of %llu  (paper: 70%%-80%%)\n\n",
                stats::Table::pct(double(quick) / total).c_str(),
                (unsigned long long)total);

    // (b) Machine-level cycles: 2-delay vs idealized 1-delay machine.
    stats::Table mach("Full-compare (2 slots) vs quick-compare (1 slot)",
                      {"machine", "cycles", "cycles/branch", "cpi"});
    BenchJson json("quick_compare");
    for (const unsigned delay : {2u, 1u}) {
        reorg::ReorgConfig rc;
        rc.slots = delay;
        rc.paperFaithful = false;
        sim::MachineConfig mc;
        mc.cpu.branchDelay = delay;
        const auto agg = runSuite(suite, mc, rc);
        if (agg.failures)
            fatal("suite failures in the quick-compare study");
        json.setSuite(strformat("delay%u", delay), agg);
        mach.addRow({delay == 2 ? "full compare, 2 delay slots"
                                : "quick compare, 1 delay slot (ideal)",
                     strformat("%llu", (unsigned long long)agg.cycles),
                     stats::Table::num(agg.cyclesPerBranch(), 2),
                     stats::Table::num(agg.cpi(), 3)});
    }
    mach.print(std::cout);
    json.write();

    std::printf(
        "The tradeoff the paper resolved: the 1-slot machine saves the\n"
        "cycles above only if the quick comparator does not stretch the\n"
        "50ns cycle; with the measured 20ns branch->PC-bus path already\n"
        "critical, even a small comparator penalty erases the gain.\n");
    return 0;
}
