/**
 * @file
 * Simulator-throughput benchmarks: how many simulated instructions per
 * host second the models deliver. Not a paper experiment — an
 * engineering health check for the tool itself.
 *
 * Two parts:
 *  - google-benchmark microbenchmarks on one workload (hash), with and
 *    without the predecoded instruction store;
 *  - a full-suite before/after report: the suite runs the way the
 *    pre-optimization simulator did (one job, decode on every fetch),
 *    the optimized way without the prepared-image cache (toolchain
 *    rebuilt per run), and the fully optimized way (worker pool,
 *    prepared cache). All aggregates must be identical — the
 *    optimizations change how fast the answer arrives, never the
 *    answer — and the timing rows are phase-split into prepare
 *    (toolchain) and simulate (Machine::run) seconds, recorded in
 *    BENCH_simulator_speed.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "assembler/assembler.hh"
#include "bench_util.hh"
#include "common/sim_error.hh"
#include "reorg/scheduler.hh"
#include "sim/machine.hh"
#include "trace/metrics.hh"
#include "workload/suite_runner.hh"
#include "workload/workload.hh"

using namespace mipsx;

namespace
{

const workload::Workload &
hashWorkload()
{
    static const auto all = workload::pascalWorkloads();
    for (const auto &w : all)
        if (w.name == "hash")
            return w;
    throw SimError("hash workload missing");
}

void
pipelineSimulation(benchmark::State &state, bool predecode)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    const auto reorged = reorg::reorganize(prog, {}, nullptr);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Machine machine{sim::MachineConfig{}};
        machine.memory().setPredecodeEnabled(predecode);
        machine.load(reorged);
        const auto r = machine.run();
        if (!r.halted())
            state.SkipWithError("workload failed");
        instructions += r.instructions;
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_PipelineSimulation(benchmark::State &state)
{
    pipelineSimulation(state, true);
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

void
BM_PipelineSimulationNoPredecode(benchmark::State &state)
{
    pipelineSimulation(state, false);
}
BENCHMARK(BM_PipelineSimulationNoPredecode)->Unit(benchmark::kMillisecond);

/**
 * A long-running straight-line ALU kernel: ~20 block-safe instructions
 * per loop iteration, tens of thousands of iterations. One run executes
 * ~0.5M instructions, so load/decode setup is noise and the measurement
 * is the execute loop itself — the quantity the superblock engine
 * changes. The short hash workload above stays as the whole-run number
 * (where setup and the stepping fallback dilute the ratio).
 */
const char *hotKernelSource = R"(
        .text
_start: addi r1, r0, 25000
        addi r2, r0, 7
        addi r3, r0, 13
loop:   add  r4, r2, r3
        xor  r5, r4, r2
        sll  r6, r5, 3
        sub  r7, r6, r3
        or   r8, r7, r2
        and  r9, r8, r5
        srl  r10, r9, 2
        add  r11, r10, r4
        xor  r12, r11, r6
        and  r2, r12, r10
        add  r13, r2, r3
        sub  r14, r13, r4
        or   r15, r14, r5
        and  r16, r15, r6
        xor  r17, r16, r7
        sll  r18, r17, 1
        srl  r19, r18, 1
        add  r20, r19, r8
        and  r21, r20, r9
        or   r3, r21, r2
        addi r1, r1, -1
        bnz  r1, loop
        halt
)";

const assembler::Program &
hotKernel()
{
    static const auto prog =
        assembler::assemble(hotKernelSource, "hot_alu.s");
    return prog;
}

void
functionalSimulationHot(benchmark::State &state, sim::IssExec exec)
{
    const auto &prog = hotKernel();
    sim::IssConfig cfg;
    cfg.exec = exec;
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        memory::MainMemory mem;
        const auto r = sim::runIss(prog, mem, cfg);
        if (r.reason != sim::IssStop::Halt)
            state.SkipWithError("hot kernel failed");
        instructions += r.stats.steps;
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_FunctionalSimulationHot(benchmark::State &state)
{
    functionalSimulationHot(state, sim::IssExec::Step);
}
BENCHMARK(BM_FunctionalSimulationHot)->Unit(benchmark::kMillisecond);

void
BM_FunctionalSimulationHotBlock(benchmark::State &state)
{
    functionalSimulationHot(state, sim::IssExec::Block);
}
BENCHMARK(BM_FunctionalSimulationHotBlock)->Unit(benchmark::kMillisecond);

void
functionalSimulation(benchmark::State &state, sim::IssExec exec)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    sim::IssConfig cfg;
    cfg.exec = exec;
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        memory::MainMemory mem;
        const auto r = sim::runIss(prog, mem, cfg);
        if (r.reason != sim::IssStop::Halt)
            state.SkipWithError("workload failed");
        instructions += r.stats.steps;
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_FunctionalSimulation(benchmark::State &state)
{
    functionalSimulation(state, sim::IssExec::Step);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_FunctionalSimulationBlock(benchmark::State &state)
{
    functionalSimulation(state, sim::IssExec::Block);
}
BENCHMARK(BM_FunctionalSimulationBlock)->Unit(benchmark::kMillisecond);

void
BM_Assembler(benchmark::State &state)
{
    const auto &w = hashWorkload();
    for (auto _ : state) {
        const auto prog = assembler::assemble(w.source, "hash.s");
        benchmark::DoNotOptimize(prog.textSize());
    }
}
BENCHMARK(BM_Assembler)->Unit(benchmark::kMicrosecond);

void
BM_Reorganizer(benchmark::State &state)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    for (auto _ : state) {
        const auto q = reorg::reorganize(prog, {}, nullptr);
        benchmark::DoNotOptimize(q.textSize());
    }
}
BENCHMARK(BM_Reorganizer)->Unit(benchmark::kMicrosecond);

/** Best (fastest) of @p reps suite runs; stats checked for identity. */
workload::SuiteResult
bestOf(const std::vector<workload::Workload> &suite,
       const workload::SuiteRunOptions &opts, int reps)
{
    workload::SuiteResult best = workload::runSuite(suite, opts);
    for (int i = 1; i < reps; ++i) {
        auto r = workload::runSuite(suite, opts);
        if (!(r.stats == best.stats))
            throw SimError("suite aggregate not reproducible across runs");
        if (r.timing.hostSeconds < best.timing.hostSeconds)
            best = std::move(r);
    }
    return best;
}

/**
 * The simulation-phase throughput (instructions per host second spent
 * inside Machine::run()) the pre-optimization simulator achieved on the
 * full suite on the development host; see EXPERIMENTS.md ("Simulator
 * performance") for the measurement. Override with MIPSX_SPEED_REF
 * (instr/s) when benchmarking on a different machine against a locally
 * measured pre-optimization build.
 */
double
referenceThroughput()
{
    if (const char *env = std::getenv("MIPSX_SPEED_REF")) {
        const double v = std::atof(env);
        if (v > 0)
            return v;
    }
    return 16.8e6;
}

/** The full-suite before/after measurement. Returns 0 on success. */
int
fullSuiteReport()
{
    const auto suite = workload::fullSuite();
    std::printf("\nfull suite: %zu workloads, 3 runs per mode, best kept\n",
                suite.size());

    // The before/uncached modes must bypass the process-wide prepared
    // cache: it persists across modes in this one process, and a warm
    // hit would make the "rebuild everything" rows measure nothing.
    workload::SuiteRunOptions before;
    before.jobs = 1;
    before.predecode = false; // decode on every fetch
    before.preparedCache = false;

    workload::SuiteRunOptions uncached; // fast core, toolchain per run
    uncached.preparedCache = false;

    workload::SuiteRunOptions after; // worker pool + prepared cache

    // Tracing compiled in but *enabled*: every machine records into a
    // per-machine 4k-deep ring. The default mode above is the
    // tracing-disabled case (traceDepth 0, null buffer pointer).
    workload::SuiteRunOptions traced = after;
    traced.machine.traceDepth = 4096;

    const auto b = bestOf(suite, before, 3);
    const auto u = bestOf(suite, uncached, 3);
    const auto a = bestOf(suite, after, 3);
    const auto t = bestOf(suite, traced, 3);
    bench::reportFailures(b.failures);

    if (!(a.stats == b.stats) || !(u.stats == b.stats)) {
        std::fprintf(stderr,
                     "!! optimized suite aggregate differs from baseline\n");
        return 1;
    }
    if (!(t.stats == a.stats)) {
        std::fprintf(stderr,
                     "!! tracing changed the suite aggregate\n");
        return 1;
    }

    // Simulation-phase throughput: host time inside Machine::run() only.
    // A single pass over the suite is dominated by assemble+reorganize,
    // so wall time would mostly measure the toolchain; the prepare
    // column shows exactly that phase (near zero on cache hits).
    std::printf("%-30s %6s %9s %9s %9s %14s\n", "mode", "jobs", "wall s",
                "prep s", "sim s", "sim instr/s");
    const auto row = [](const char *mode, const workload::SuiteTiming &tm) {
        std::printf("%-30s %6u %9.3f %9.3f %9.3f %14.0f\n", mode, tm.jobs,
                    tm.hostSeconds, tm.prepareSeconds, tm.simSeconds,
                    tm.instrPerSimSecond());
    };
    row("decode-per-fetch, 1 job", b.timing);
    row("uncached, worker pool", u.timing);
    row("prepared cache, worker pool", a.timing);
    row("tracing enabled (4k ring)", t.timing);

    const double vsPredecode = b.timing.simSeconds > 0
        ? b.timing.simSeconds / a.timing.simSeconds
        : 0.0;
    const double cacheSpeedup = a.timing.hostSeconds > 0
        ? u.timing.hostSeconds / a.timing.hostSeconds
        : 0.0;
    const double prepSpeedup = a.timing.prepareSeconds > 0
        ? u.timing.prepareSeconds / a.timing.prepareSeconds
        : 0.0;
    const double ref = referenceThroughput();
    const double vsPrePr = a.timing.instrPerSimSecond() / ref;
    std::printf("speedup from predecode alone: %.2fx"
                " (aggregates identical)\n", vsPredecode);
    std::printf("prepared cache: %.2fx wall, %.2fx prepare phase"
                " (warm vs rebuild-per-run)\n", cacheSpeedup, prepSpeedup);
    std::printf("speedup vs pre-optimization simulator: %.2fx"
                " (reference %.1f Minstr/s, see EXPERIMENTS.md)\n",
                vsPrePr, ref / 1e6);

    // The tracer's overhead guarantee (DESIGN.md): with tracing
    // disabled the only cost is a null-pointer test per emission site,
    // so the untraced run must not be measurably slower than the traced
    // one. Allow generous noise headroom — the claim being enforced is
    // "no systematic slowdown", not a precise ratio.
    const double tracedRatio = t.timing.simSeconds > 0
        ? a.timing.instrPerSimSecond() / t.timing.instrPerSimSecond()
        : 0.0;
    std::printf("tracing-disabled throughput is %.2fx the traced run's"
                " (must not regress)\n", tracedRatio);
    if (tracedRatio < 0.9) {
        std::fprintf(stderr,
                     "!! tracing-disabled run is >10%% slower than the "
                     "traced run: the disabled path is not free\n");
        return 1;
    }

    // ISS throughput, step vs superblock execution: every workload run
    // on the functional simulator through both execute loops, best of 3
    // timed passes each. The per-workload stop reason and statistics
    // must be identical — the block engine changes how fast the ISS
    // answers, never the answer (the differential tests and the
    // fuzzer's --iss-mode=both leg check the full state; this check
    // keeps the bench honest about what it compares).
    struct IssOutcome
    {
        sim::IssStop reason;
        sim::IssStats stats;
    };
    std::vector<assembler::Program> issProgs;
    issProgs.reserve(suite.size());
    for (const auto &w : suite)
        issProgs.push_back(assembler::assemble(w.source, w.name + ".s"));
    const auto issPass = [&issProgs](sim::IssExec exec,
                                     std::vector<IssOutcome> &outcomes) {
        sim::IssConfig cfg;
        cfg.exec = exec;
        outcomes.clear();
        const auto start = std::chrono::steady_clock::now();
        for (const auto &prog : issProgs) {
            memory::MainMemory mem;
            const auto r = sim::runIss(prog, mem, cfg);
            outcomes.push_back({r.reason, r.stats});
        }
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        return dt.count();
    };
    const auto sameStats = [](const sim::IssStats &x,
                              const sim::IssStats &y) {
        return x.steps == y.steps && x.branches == y.branches &&
            x.branchesTaken == y.branchesTaken && x.jumps == y.jumps &&
            x.loads == y.loads && x.stores == y.stores &&
            x.coprocOps == y.coprocOps && x.traps == y.traps &&
            x.exceptions == y.exceptions && x.interrupts == y.interrupts;
    };
    std::vector<IssOutcome> stepOut, blockOut, scratch;
    double stepSec = issPass(sim::IssExec::Step, stepOut);
    double blockSec = issPass(sim::IssExec::Block, blockOut);
    for (int i = 1; i < 3; ++i) {
        stepSec = std::min(stepSec, issPass(sim::IssExec::Step, scratch));
        blockSec =
            std::min(blockSec, issPass(sim::IssExec::Block, scratch));
    }
    std::uint64_t issInstr = 0;
    for (std::size_t i = 0; i < stepOut.size(); ++i) {
        if (stepOut[i].reason != blockOut[i].reason ||
            !sameStats(stepOut[i].stats, blockOut[i].stats)) {
            std::fprintf(stderr,
                         "!! block-mode ISS statistics differ from "
                         "step mode on workload %zu\n",
                         i);
            return 1;
        }
        issInstr += stepOut[i].stats.steps;
    }
    const double issSuiteStepRate =
        stepSec > 0 ? issInstr / stepSec : 0.0;
    const double issSuiteBlockRate =
        blockSec > 0 ? issInstr / blockSec : 0.0;
    const double issSuiteSpeedup = issSuiteStepRate > 0
        ? issSuiteBlockRate / issSuiteStepRate
        : 0.0;
    std::printf("\niss execute loops (full suite, %llu instructions):\n",
                static_cast<unsigned long long>(issInstr));
    std::printf("%-30s %9s %14s\n", "mode", "sim s", "sim instr/s");
    std::printf("%-30s %9.3f %14.0f\n", "step (reference loop)", stepSec,
                issSuiteStepRate);
    std::printf("%-30s %9.3f %14.0f\n", "block (superblock loop)",
                blockSec, issSuiteBlockRate);
    std::printf("superblock speedup: %.2fx (statistics identical)\n",
                issSuiteSpeedup);

    // Headline ISS rates come from the hot ALU kernel (~0.5M executed
    // instructions per run) where load/assemble setup is noise and the
    // measurement is the execute loop itself — the quantity the
    // superblock engine changes. The full-suite pass above stays as the
    // workload-mix number (short programs, setup included).
    const auto hotPass = [](sim::IssExec exec, IssOutcome &out) {
        sim::IssConfig cfg;
        cfg.exec = exec;
        const auto start = std::chrono::steady_clock::now();
        memory::MainMemory mem;
        const auto r = sim::runIss(hotKernel(), mem, cfg);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        out = {r.reason, r.stats};
        return dt.count();
    };
    IssOutcome hotStep{}, hotBlock{}, hotScratch{};
    double hotStepSec = hotPass(sim::IssExec::Step, hotStep);
    double hotBlockSec = hotPass(sim::IssExec::Block, hotBlock);
    for (int i = 1; i < 3; ++i) {
        hotStepSec =
            std::min(hotStepSec, hotPass(sim::IssExec::Step, hotScratch));
        hotBlockSec = std::min(hotBlockSec,
                               hotPass(sim::IssExec::Block, hotScratch));
    }
    if (hotStep.reason != sim::IssStop::Halt ||
        hotBlock.reason != hotStep.reason ||
        !sameStats(hotStep.stats, hotBlock.stats)) {
        std::fprintf(stderr, "!! block-mode ISS statistics differ from "
                             "step mode on the hot kernel\n");
        return 1;
    }
    const std::uint64_t hotInstr = hotStep.stats.steps;
    const double issStepRate =
        hotStepSec > 0 ? hotInstr / hotStepSec : 0.0;
    const double issBlockRate =
        hotBlockSec > 0 ? hotInstr / hotBlockSec : 0.0;
    const double issBlockSpeedup =
        issStepRate > 0 ? issBlockRate / issStepRate : 0.0;
    std::printf("\niss execute loops (hot kernel, %llu instructions):\n",
                static_cast<unsigned long long>(hotInstr));
    std::printf("%-30s %9s %14s\n", "mode", "sim s", "sim instr/s");
    std::printf("%-30s %9.3f %14.0f\n", "step (reference loop)",
                hotStepSec, issStepRate);
    std::printf("%-30s %9.3f %14.0f\n", "block (superblock loop)",
                hotBlockSec, issBlockRate);
    std::printf("superblock speedup: %.2fx (statistics identical)\n",
                issBlockSpeedup);

    bench::BenchJson json("simulator_speed");
    json.setSuite("suite", a.stats);
    json.setEnergy("energy", a.stats);
    json.setTiming("baseline", b.timing);
    json.setTiming("uncached", u.timing);
    json.setTiming("optimized", a.timing);
    json.setTiming("traced", t.timing);
    json.set("speedup_vs_no_predecode", vsPredecode);
    json.set("prepared_cache_wall_speedup", cacheSpeedup);
    json.set("prepared_cache_prepare_speedup", prepSpeedup);
    json.set("reference_instr_per_second", ref);
    json.set("speedup_vs_reference", vsPrePr);
    json.set("untraced_vs_traced", tracedRatio);
    json.set("iss_step_instr_per_s", issStepRate);
    json.set("iss_block_instr_per_s", issBlockRate);
    json.set("iss_block_speedup", issBlockSpeedup);
    json.set("iss_suite_step_instr_per_s", issSuiteStepRate);
    json.set("iss_suite_block_instr_per_s", issSuiteBlockRate);
    json.set("iss_suite_block_speedup", issSuiteSpeedup);
    json.write();

    // The same aggregate again as a flat metrics file, through the
    // MetricsRegistry the simulators export through — keeps the bench
    // output and the --metrics-json CLI output one format.
    trace::MetricsRegistry metrics;
    workload::collectMetrics(a.stats, metrics);
    workload::collectEnergy(a.stats, {}, metrics);
    workload::collectTiming(a.timing, metrics, "timing");
    if (metrics.writeJsonFile("BENCH_simulator_speed_metrics.json"))
        std::printf("wrote BENCH_simulator_speed_metrics.json\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return fullSuiteReport();
}
