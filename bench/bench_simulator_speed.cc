/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): how many
 * simulated cycles/instructions per second the models deliver. Not a
 * paper experiment — an engineering health check for the tool itself.
 */

#include <benchmark/benchmark.h>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "reorg/scheduler.hh"
#include "sim/machine.hh"
#include "workload/workload.hh"

using namespace mipsx;

namespace
{

const workload::Workload &
hashWorkload()
{
    static const auto all = workload::pascalWorkloads();
    for (const auto &w : all)
        if (w.name == "hash")
            return w;
    throw SimError("hash workload missing");
}

void
BM_PipelineSimulation(benchmark::State &state)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    const auto reorged = reorg::reorganize(prog, {}, nullptr);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Machine machine{sim::MachineConfig{}};
        machine.load(reorged);
        const auto r = machine.run();
        if (!r.halted())
            state.SkipWithError("workload failed");
        instructions += r.instructions;
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

void
BM_FunctionalSimulation(benchmark::State &state)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        memory::MainMemory mem;
        const auto r = sim::runIss(prog, mem);
        if (r.reason != sim::IssStop::Halt)
            state.SkipWithError("workload failed");
        instructions += r.stats.steps;
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_Assembler(benchmark::State &state)
{
    const auto &w = hashWorkload();
    for (auto _ : state) {
        const auto prog = assembler::assemble(w.source, "hash.s");
        benchmark::DoNotOptimize(prog.textSize());
    }
}
BENCHMARK(BM_Assembler)->Unit(benchmark::kMicrosecond);

void
BM_Reorganizer(benchmark::State &state)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    for (auto _ : state) {
        const auto q = reorg::reorganize(prog, {}, nullptr);
        benchmark::DoNotOptimize(q.textSize());
    }
}
BENCHMARK(BM_Reorganizer)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
