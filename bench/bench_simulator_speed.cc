/**
 * @file
 * Simulator-throughput benchmarks: how many simulated instructions per
 * host second the models deliver. Not a paper experiment — an
 * engineering health check for the tool itself.
 *
 * Two parts:
 *  - google-benchmark microbenchmarks on one workload (hash), with and
 *    without the predecoded instruction store;
 *  - a full-suite before/after report: the suite runs the way the
 *    pre-optimization simulator did (one job, decode on every fetch),
 *    the optimized way without the prepared-image cache (toolchain
 *    rebuilt per run), and the fully optimized way (worker pool,
 *    prepared cache). All aggregates must be identical — the
 *    optimizations change how fast the answer arrives, never the
 *    answer — and the timing rows are phase-split into prepare
 *    (toolchain) and simulate (Machine::run) seconds, recorded in
 *    BENCH_simulator_speed.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "assembler/assembler.hh"
#include "bench_util.hh"
#include "common/sim_error.hh"
#include "reorg/scheduler.hh"
#include "sim/machine.hh"
#include "trace/metrics.hh"
#include "workload/suite_runner.hh"
#include "workload/workload.hh"

using namespace mipsx;

namespace
{

const workload::Workload &
hashWorkload()
{
    static const auto all = workload::pascalWorkloads();
    for (const auto &w : all)
        if (w.name == "hash")
            return w;
    throw SimError("hash workload missing");
}

void
pipelineSimulation(benchmark::State &state, bool predecode)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    const auto reorged = reorg::reorganize(prog, {}, nullptr);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Machine machine{sim::MachineConfig{}};
        machine.memory().setPredecodeEnabled(predecode);
        machine.load(reorged);
        const auto r = machine.run();
        if (!r.halted())
            state.SkipWithError("workload failed");
        instructions += r.instructions;
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_PipelineSimulation(benchmark::State &state)
{
    pipelineSimulation(state, true);
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

void
BM_PipelineSimulationNoPredecode(benchmark::State &state)
{
    pipelineSimulation(state, false);
}
BENCHMARK(BM_PipelineSimulationNoPredecode)->Unit(benchmark::kMillisecond);

void
BM_FunctionalSimulation(benchmark::State &state)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        memory::MainMemory mem;
        const auto r = sim::runIss(prog, mem);
        if (r.reason != sim::IssStop::Halt)
            state.SkipWithError("workload failed");
        instructions += r.stats.steps;
    }
    state.counters["sim_instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_Assembler(benchmark::State &state)
{
    const auto &w = hashWorkload();
    for (auto _ : state) {
        const auto prog = assembler::assemble(w.source, "hash.s");
        benchmark::DoNotOptimize(prog.textSize());
    }
}
BENCHMARK(BM_Assembler)->Unit(benchmark::kMicrosecond);

void
BM_Reorganizer(benchmark::State &state)
{
    const auto prog =
        assembler::assemble(hashWorkload().source, "hash.s");
    for (auto _ : state) {
        const auto q = reorg::reorganize(prog, {}, nullptr);
        benchmark::DoNotOptimize(q.textSize());
    }
}
BENCHMARK(BM_Reorganizer)->Unit(benchmark::kMicrosecond);

/** Best (fastest) of @p reps suite runs; stats checked for identity. */
workload::SuiteResult
bestOf(const std::vector<workload::Workload> &suite,
       const workload::SuiteRunOptions &opts, int reps)
{
    workload::SuiteResult best = workload::runSuite(suite, opts);
    for (int i = 1; i < reps; ++i) {
        auto r = workload::runSuite(suite, opts);
        if (!(r.stats == best.stats))
            throw SimError("suite aggregate not reproducible across runs");
        if (r.timing.hostSeconds < best.timing.hostSeconds)
            best = std::move(r);
    }
    return best;
}

/**
 * The simulation-phase throughput (instructions per host second spent
 * inside Machine::run()) the pre-optimization simulator achieved on the
 * full suite on the development host; see EXPERIMENTS.md ("Simulator
 * performance") for the measurement. Override with MIPSX_SPEED_REF
 * (instr/s) when benchmarking on a different machine against a locally
 * measured pre-optimization build.
 */
double
referenceThroughput()
{
    if (const char *env = std::getenv("MIPSX_SPEED_REF")) {
        const double v = std::atof(env);
        if (v > 0)
            return v;
    }
    return 16.8e6;
}

/** The full-suite before/after measurement. Returns 0 on success. */
int
fullSuiteReport()
{
    const auto suite = workload::fullSuite();
    std::printf("\nfull suite: %zu workloads, 3 runs per mode, best kept\n",
                suite.size());

    // The before/uncached modes must bypass the process-wide prepared
    // cache: it persists across modes in this one process, and a warm
    // hit would make the "rebuild everything" rows measure nothing.
    workload::SuiteRunOptions before;
    before.jobs = 1;
    before.predecode = false; // decode on every fetch
    before.preparedCache = false;

    workload::SuiteRunOptions uncached; // fast core, toolchain per run
    uncached.preparedCache = false;

    workload::SuiteRunOptions after; // worker pool + prepared cache

    // Tracing compiled in but *enabled*: every machine records into a
    // per-machine 4k-deep ring. The default mode above is the
    // tracing-disabled case (traceDepth 0, null buffer pointer).
    workload::SuiteRunOptions traced = after;
    traced.machine.traceDepth = 4096;

    const auto b = bestOf(suite, before, 3);
    const auto u = bestOf(suite, uncached, 3);
    const auto a = bestOf(suite, after, 3);
    const auto t = bestOf(suite, traced, 3);
    bench::reportFailures(b.failures);

    if (!(a.stats == b.stats) || !(u.stats == b.stats)) {
        std::fprintf(stderr,
                     "!! optimized suite aggregate differs from baseline\n");
        return 1;
    }
    if (!(t.stats == a.stats)) {
        std::fprintf(stderr,
                     "!! tracing changed the suite aggregate\n");
        return 1;
    }

    // Simulation-phase throughput: host time inside Machine::run() only.
    // A single pass over the suite is dominated by assemble+reorganize,
    // so wall time would mostly measure the toolchain; the prepare
    // column shows exactly that phase (near zero on cache hits).
    std::printf("%-30s %6s %9s %9s %9s %14s\n", "mode", "jobs", "wall s",
                "prep s", "sim s", "sim instr/s");
    const auto row = [](const char *mode, const workload::SuiteTiming &tm) {
        std::printf("%-30s %6u %9.3f %9.3f %9.3f %14.0f\n", mode, tm.jobs,
                    tm.hostSeconds, tm.prepareSeconds, tm.simSeconds,
                    tm.instrPerSimSecond());
    };
    row("decode-per-fetch, 1 job", b.timing);
    row("uncached, worker pool", u.timing);
    row("prepared cache, worker pool", a.timing);
    row("tracing enabled (4k ring)", t.timing);

    const double vsPredecode = b.timing.simSeconds > 0
        ? b.timing.simSeconds / a.timing.simSeconds
        : 0.0;
    const double cacheSpeedup = a.timing.hostSeconds > 0
        ? u.timing.hostSeconds / a.timing.hostSeconds
        : 0.0;
    const double prepSpeedup = a.timing.prepareSeconds > 0
        ? u.timing.prepareSeconds / a.timing.prepareSeconds
        : 0.0;
    const double ref = referenceThroughput();
    const double vsPrePr = a.timing.instrPerSimSecond() / ref;
    std::printf("speedup from predecode alone: %.2fx"
                " (aggregates identical)\n", vsPredecode);
    std::printf("prepared cache: %.2fx wall, %.2fx prepare phase"
                " (warm vs rebuild-per-run)\n", cacheSpeedup, prepSpeedup);
    std::printf("speedup vs pre-optimization simulator: %.2fx"
                " (reference %.1f Minstr/s, see EXPERIMENTS.md)\n",
                vsPrePr, ref / 1e6);

    // The tracer's overhead guarantee (DESIGN.md): with tracing
    // disabled the only cost is a null-pointer test per emission site,
    // so the untraced run must not be measurably slower than the traced
    // one. Allow generous noise headroom — the claim being enforced is
    // "no systematic slowdown", not a precise ratio.
    const double tracedRatio = t.timing.simSeconds > 0
        ? a.timing.instrPerSimSecond() / t.timing.instrPerSimSecond()
        : 0.0;
    std::printf("tracing-disabled throughput is %.2fx the traced run's"
                " (must not regress)\n", tracedRatio);
    if (tracedRatio < 0.9) {
        std::fprintf(stderr,
                     "!! tracing-disabled run is >10%% slower than the "
                     "traced run: the disabled path is not free\n");
        return 1;
    }

    bench::BenchJson json("simulator_speed");
    json.setSuite("suite", a.stats);
    json.setTiming("baseline", b.timing);
    json.setTiming("uncached", u.timing);
    json.setTiming("optimized", a.timing);
    json.setTiming("traced", t.timing);
    json.set("speedup_vs_no_predecode", vsPredecode);
    json.set("prepared_cache_wall_speedup", cacheSpeedup);
    json.set("prepared_cache_prepare_speedup", prepSpeedup);
    json.set("reference_instr_per_second", ref);
    json.set("speedup_vs_reference", vsPrePr);
    json.set("untraced_vs_traced", tracedRatio);
    json.write();

    // The same aggregate again as a flat metrics file, through the
    // MetricsRegistry the simulators export through — keeps the bench
    // output and the --metrics-json CLI output one format.
    trace::MetricsRegistry metrics;
    workload::collectMetrics(a.stats, metrics);
    workload::collectTiming(a.timing, metrics, "timing");
    if (metrics.writeJsonFile("BENCH_simulator_speed_metrics.json"))
        std::printf("wrote BENCH_simulator_speed_metrics.json\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return fullSuiteReport();
}
