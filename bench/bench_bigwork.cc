/**
 * @file
 * E15 — parallel interval simulation over a cache-thrashing workload.
 *
 * The cycle-accurate pipeline is the slow path of every study in this
 * repo, and it is serial by nature. This harness measures what the
 * checkpointed interval engine buys on a multi-million-instruction
 * scaled workload whose data footprint thrashes the external cache
 * (the regime the paper's 50-270 KByte benchmarks lived in):
 *
 *  - a monolithic cycle-accurate run (the baseline everyone pays),
 *  - sampled interval runs at --jobs 1/2/8 (plan once on the block-
 *    mode ISS, simulate a 16k-instruction window per interval after a
 *    12k warm-up, extrapolate to the interval length),
 *  - an exact interval run (windows tile the whole run) whose stitched
 *    instruction count must equal the monolithic run's bit for bit.
 *
 * The deterministic acceptance bars are enforced here (nonzero exit):
 * estimated cycles within 1% of monolithic, byte-identical results at
 * every jobs count, exact-mode instruction identity. The wall-clock
 * speedup is reported but never gated — host timing belongs to the
 * machine, not the simulator.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "sim/interval.hh"
#include "sim/machine.hh"
#include "stats/table.hh"
#include "workload/prepared.hh"
#include "workload/workload.hh"

using namespace mipsx;
using bench::BenchJson;

namespace
{

/** Best-of-k wall time: the minimum over @p k calls of @p fn. */
template <typename Fn>
double
bestSeconds(unsigned k, Fn &&fn)
{
    double best = 1e300;
    for (unsigned i = 0; i < k; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        best = std::min(best, dt.count());
    }
    return best;
}

} // namespace

int
main()
{
    bench::banner(
        "E15", "parallel interval simulation on a thrashing workload",
        "checkpointed sampling makes big cycle-accurate runs cheap "
        "without changing any verdict");

    // ~19.5M dynamic instructions sweeping a 128K-word array through a
    // 4K-word external cache: a 32x capacity thrash, so the monolithic
    // steady state misses as hard as a freshly warmed interval window
    // and the read-modify-write stores dirty every line a window
    // touches (write-back traffic reproduces under short warm-up).
    const auto w = workload::scaledLoopNest("bigwork", 1u << 17, 16, 77);
    sim::MachineConfig cfg;
    cfg.cpu.ecache.sizeWords = 4096;

    const auto prep = workload::prepareWorkload(w, {}, false);
    const auto *decoded = &prep->decoded;
    const unsigned reps = 3;

    // --- The monolithic baseline. -----------------------------------
    core::RunResult monoResult;
    std::uint64_t monoCommitted = 0;
    const double monoSec = bestSeconds(reps, [&] {
        sim::Machine m(cfg);
        m.load(prep->image, decoded);
        monoResult = m.run();
        monoCommitted = m.cpu().stats().committed;
    });
    if (monoResult.reason != core::StopReason::Halt)
        fatal("bigwork: monolithic run did not halt");

    // --- Sampled interval runs at jobs 1/2/8. ------------------------
    sim::IntervalConfig ic;
    ic.intervals = 12;
    ic.warmup = 12000;
    ic.sample = 16000;
    ic.totalHint = w.dynamicEstimate;
    ic.phases = w.dynamicPhases;

    struct JobsRun
    {
        unsigned jobs;
        double seconds = 0;
        sim::IntervalResult r;
    } runs[] = {{1, 0, {}}, {2, 0, {}}, {8, 0, {}}};
    for (auto &jr : runs) {
        ic.jobs = jr.jobs;
        jr.seconds = bestSeconds(reps, [&] {
            jr.r = sim::runIntervals(prep->image, cfg, ic, decoded);
        });
        if (!jr.r.intervalRan)
            fatal(strformat("bigwork: fell back at jobs %u: %s",
                            jr.jobs, jr.r.fallback.c_str()));
        if (!jr.r.passed)
            fatal(strformat("bigwork: interval run failed at jobs %u",
                            jr.jobs));
    }

    // Byte-identity across jobs counts: pieces, stitched and estimated
    // aggregates must all match the jobs=1 reference exactly.
    unsigned jobsMismatches = 0;
    for (const auto &jr : {runs[1], runs[2]}) {
        if (jr.r.pieces != runs[0].r.pieces ||
            jr.r.stitched != runs[0].r.stitched ||
            jr.r.estimated != runs[0].r.estimated)
            ++jobsMismatches;
    }

    // --- The exact mode: windows tile the run, no extrapolation. -----
    sim::IntervalConfig exact = ic;
    exact.sample = 0;
    exact.jobs = 8;
    sim::IntervalResult exactRun;
    const double exactSec = bestSeconds(1, [&] {
        exactRun = sim::runIntervals(prep->image, cfg, exact, decoded);
    });
    const unsigned exactMismatch =
        (!exactRun.exact ||
         exactRun.stitched.pipeline.committed != monoCommitted)
        ? 1
        : 0;

    // --- Report. ------------------------------------------------------
    const auto &est = runs[0].r.estimated.pipeline;
    const double cycErrPct = 100.0 *
        (static_cast<double>(est.cycles) -
         static_cast<double>(monoResult.cycles)) /
        static_cast<double>(monoResult.cycles);
    const double exactCycErrPct = 100.0 *
        (static_cast<double>(exactRun.stitched.pipeline.cycles) -
         static_cast<double>(monoResult.cycles)) /
        static_cast<double>(monoResult.cycles);

    stats::Table table("bigwork: monolithic vs interval (best of 3)",
                       {"run", "seconds", "speedup", "cycles",
                        "cycle err"});
    table.addRow({"monolithic", strformat("%.3f", monoSec), "1.00x",
                  strformat("%llu",
                            (unsigned long long)monoResult.cycles),
                  "--"});
    for (const auto &jr : runs) {
        table.addRow(
            {strformat("intervals --jobs %u", jr.jobs),
             strformat("%.3f", jr.seconds),
             strformat("%.2fx", monoSec / jr.seconds),
             strformat("%llu", (unsigned long long)
                                   jr.r.estimated.pipeline.cycles),
             strformat("%+.3f%%", cycErrPct)});
    }
    table.addRow({"intervals exact", strformat("%.3f", exactSec),
                  strformat("%.2fx", monoSec / exactSec),
                  strformat("%llu",
                            (unsigned long long)
                                exactRun.stitched.pipeline.cycles),
                  strformat("%+.3f%%", exactCycErrPct)});
    table.print(std::cout);

    BenchJson json("bigwork");
    json.set("bigwork.instructions", monoCommitted);
    json.set("bigwork.mono.cycles", monoResult.cycles);
    json.set("bigwork.estimated.cycles",
             std::uint64_t(est.cycles));
    json.set("bigwork.estimated.committed",
             std::uint64_t(est.committed));
    json.set("bigwork.estimated.cpi", est.cpi());
    json.set("bigwork.cycle_error_pct", cycErrPct);
    json.set("bigwork.cycle_error_abs_pct", std::fabs(cycErrPct));
    json.set("bigwork.exact.cycles",
             std::uint64_t(exactRun.stitched.pipeline.cycles));
    json.set("bigwork.exact.committed",
             std::uint64_t(exactRun.stitched.pipeline.committed));
    json.set("bigwork.exact.cycle_error_abs_pct",
             std::fabs(exactCycErrPct));
    json.set("bigwork.jobs_mismatches", std::uint64_t(jobsMismatches));
    json.set("bigwork.exact_committed_mismatch",
             std::uint64_t(exactMismatch));
    json.set("bigwork.intervals", std::uint64_t(ic.intervals));
    json.set("bigwork.warmup", ic.warmup);
    json.set("bigwork.sample", ic.sample);
    json.set("bigwork.plan_iss_instructions",
             runs[0].r.planIssInstructions);
    json.set("bigwork.warmup_instructions",
             runs[0].r.warmupInstructions);
    // Host timing: report-only, never gated by the trend job.
    json.set("bigwork.mono_seconds", monoSec);
    json.set("bigwork.jobs1_seconds", runs[0].seconds);
    json.set("bigwork.jobs2_seconds", runs[1].seconds);
    json.set("bigwork.jobs8_seconds", runs[2].seconds);
    json.set("bigwork.speedup_jobs1", monoSec / runs[0].seconds);
    json.set("bigwork.speedup_jobs2", monoSec / runs[1].seconds);
    json.set("bigwork.speedup_jobs8", monoSec / runs[2].seconds);
    json.set("bigwork.exact_seconds", exactSec);
    json.write();

    std::printf("\nsampled estimate off by %+.3f%% over %llu "
                "instructions; jobs 1/2/8 %s; exact mode %s\n",
                cycErrPct, (unsigned long long)monoCommitted,
                jobsMismatches ? "DIVERGED" : "byte-identical",
                exactMismatch ? "MISMATCHED" : "instruction-exact");

    // Deterministic acceptance bars only; wall-clock stays advisory.
    if (std::fabs(cycErrPct) >= 1.0)
        fatal("bigwork: sampled cycle estimate off by >= 1%");
    if (jobsMismatches)
        fatal("bigwork: results differ across jobs counts");
    if (exactMismatch)
        fatal("bigwork: exact tiling lost instructions");
    return 0;
}
