/**
 * @file
 * Experiment E8 — the coprocessor interface alternatives.
 *
 * The paper walks through four designs:
 *   1. a coprocessor bit + dedicated instruction bus (~20 pins), with
 *      register transfers forced through memory;
 *   2. a 3-bit coprocessor field, still needing the bus;
 *   3. non-cached coprocessor instructions (no bus) — every coprocessor
 *      instruction pays an internal cache miss, which floating-point
 *      traces showed was too expensive;
 *   4. the final scheme: coprocessor operations as memory operations,
 *      the instruction riding the address pins, cacheable, with movfrc/
 *      movtoc register transfers and ldf/stf direct memory access for
 *      coprocessor 1.
 *
 * The harness runs the FP suite under (4) and (3) directly, and models
 * (1) as (4) plus the memory round trip that replaces each register
 * transfer, reporting cycles and the pin budget of each.
 */

#include <cstdio>

#include "bench_util.hh"
#include "isa/decode.hh"

using namespace mipsx;
using namespace mipsx::bench;

int
main()
{
    banner("E8", "coprocessor interface alternatives (FP suite)",
           "non-cached coprocessor instructions cost an I-miss each; "
           "the final address-line scheme caches them and needs ~1 "
           "extra pin instead of ~20");

    const auto fp = workload::fpWorkloads();

    // How coprocessor-heavy is FP code? (The observation that triggered
    // the redesign.)
    std::uint64_t steps = 0, copOps = 0, regMoves = 0;
    for (const auto &w : fp) {
        const auto prog = assembler::assemble(w.source, w.name);
        memory::MainMemory mem;
        mem.loadProgram(prog);
        sim::Iss iss({}, mem);
        iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
        iss.reset(prog.entry);
        iss.setGpr(isa::reg::sp, 0x70000);
        if (iss.run() != sim::IssStop::Halt)
            fatal("fp workload failed");
        steps += iss.stats().steps;
        copOps += iss.stats().coprocOps;
        // Count the register transfers specifically.
        const auto &text = prog.text();
        // dynamic counting needs execution; approximate via a re-run
        // with a branch hook is overkill — walk the static mix instead.
        (void)text;
    }
    // Dynamic register-transfer count via a dedicated run.
    for (const auto &w : fp) {
        const auto prog = assembler::assemble(w.source, w.name);
        memory::MainMemory mem;
        mem.loadProgram(prog);
        sim::Iss iss({}, mem);
        iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
        iss.reset(prog.entry);
        iss.setGpr(isa::reg::sp, 0x70000);
        while (!iss.stopped()) {
            const auto in = isa::decode(
                mem.read(iss.psw().space(), iss.pc()));
            if (in.fmt == isa::Format::Mem &&
                (in.memOp == isa::MemOp::Movfrc ||
                 in.memOp == isa::MemOp::Movtoc)) {
                ++regMoves;
            }
            iss.step();
        }
    }
    std::printf("FP suite dynamic mix: %llu instructions, %llu "
                "coprocessor ops (%s), %llu register transfers\n",
                (unsigned long long)steps, (unsigned long long)copOps,
                stats::Table::pct(double(copOps) / steps).c_str(),
                (unsigned long long)regMoves);

    stats::Table table("Coprocessor interface comparison (FP suite)",
                       {"interface", "cycles", "vs final", "extra pins",
                        "coproc insts cached?"});

    BenchJson json("coproc_interface");
    cycle_t finalCycles = 0;
    {
        const auto agg = bench::runSuite(fp);
        if (agg.failures)
            fatal("fp suite failed under the final interface");
        finalCycles = agg.cycles;
        json.setSuite("final", agg);
        table.addRow({"final: address-line, cached, ldf/stf",
                      strformat("%llu", (unsigned long long)agg.cycles),
                      "1.00x", "1 (memory-ignore)", "yes"});
    }
    {
        sim::MachineConfig mc;
        mc.cpu.coprocNonCachedFetch = true;
        const auto agg = runSuite(fp, mc);
        if (agg.failures)
            fatal("fp suite failed under the non-cached interface");
        json.set("non_cached.cycles", std::uint64_t(agg.cycles));
        table.addRow({"rejected: non-cached coproc instructions",
                      strformat("%llu", (unsigned long long)agg.cycles),
                      strformat("%.2fx",
                                double(agg.cycles) / finalCycles),
                      "1 (memory-ignore)", "no (miss per coproc op)"});
    }
    {
        // Dedicated-bus scheme: instructions cached (they travel on
        // their own bus), but register transfers go through memory:
        // movfrc/movtoc each become a store + load pair (one extra
        // instruction and one extra Ecache access ~ 2 cycles).
        const cycle_t modeled = finalCycles + 2 * regMoves;
        json.set("dedicated_bus.modeled_cycles", std::uint64_t(modeled));
        table.addRow({"rejected: dedicated coprocessor bus",
                      strformat("%llu (modeled)",
                                (unsigned long long)modeled),
                      strformat("%.2fx", double(modeled) / finalCycles),
                      "~20 (instruction bus)", "yes"});
    }
    table.print(std::cout);
    json.write();

    std::printf(
        "Expected shape: the non-cached scheme loses big on FP code "
        "(every\ncoprocessor op pays the 2-cycle internal miss plus bus "
        "traffic); the\ndedicated bus matches the final scheme's cycles "
        "but burns ~20 pins the\npaper preferred to spend elsewhere.\n");
    return 0;
}
