/**
 * @file
 * Shared helpers for the experiment harnesses: run the whole workload
 * suite under a machine/reorganizer configuration and aggregate the
 * statistics the paper's tables report.
 */

#ifndef MIPSX_BENCH_BENCH_UTIL_HH
#define MIPSX_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <iostream>
#include <vector>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

namespace mipsx::bench
{

/** Aggregated statistics over a set of workloads. */
struct SuiteStats
{
    unsigned workloads = 0;
    unsigned failures = 0;
    cycle_t cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t committedNops = 0;
    std::uint64_t nopsInBranchSlots = 0;
    std::uint64_t nopsForLoadDelay = 0;
    std::uint64_t squashed = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchesTaken = 0;
    std::uint64_t branchWastedSlots = 0;
    std::uint64_t jumps = 0;
    std::uint64_t jumpWastedSlots = 0;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t icacheStalls = 0;
    std::uint64_t ecacheAccesses = 0;
    std::uint64_t ecacheMisses = 0;
    std::uint64_t ecacheStalls = 0;

    double cpi() const
    {
        return committed ? double(cycles) / double(committed) : 0.0;
    }
    double noopFraction() const
    {
        return committed ? double(committedNops) / double(committed) : 0.0;
    }
    double cyclesPerBranch() const
    {
        return branches ? 1.0 + double(branchWastedSlots) / double(branches)
                        : 0.0;
    }
    double cyclesPerControl() const
    {
        const auto n = branches + jumps;
        return n ? 1.0 +
                double(branchWastedSlots + jumpWastedSlots) / double(n)
                 : 0.0;
    }
    double icacheMissRatio() const
    {
        return icacheAccesses ? double(icacheMisses) / double(icacheAccesses)
                              : 0.0;
    }
    double avgFetchCost() const
    {
        return icacheAccesses
            ? 1.0 + double(icacheStalls) / double(icacheAccesses)
            : 0.0;
    }
    double ecacheMissRatio() const
    {
        return ecacheAccesses ? double(ecacheMisses) / double(ecacheAccesses)
                              : 0.0;
    }
};

/** Run every workload in @p ws and aggregate. */
inline SuiteStats
runSuite(const std::vector<workload::Workload> &ws,
         const sim::MachineConfig &machine_cfg = {},
         const reorg::ReorgConfig &reorg_cfg = {},
         bool use_profiles = false)
{
    SuiteStats agg;
    for (const auto &w : ws) {
        reorg::ReorgConfig rc = reorg_cfg;
        if (use_profiles) {
            rc.prediction = reorg::Prediction::Profile;
            rc.profile = workload::collectProfile(w);
        }
        const auto prog = assembler::assemble(w.source, w.name + ".s");
        reorg::ReorgStats rst;
        const auto reorged = reorg::reorganize(prog, rc, &rst);
        sim::Machine machine(machine_cfg);
        machine.load(reorged);
        const auto result = machine.run();

        ++agg.workloads;
        if (result.reason != core::StopReason::Halt) {
            ++agg.failures;
            std::fprintf(stderr, "!! workload %s stopped with %s\n",
                         w.name.c_str(),
                         core::stopReasonName(result.reason));
            continue;
        }
        const auto &s = machine.cpu().stats();
        agg.cycles += s.cycles;
        agg.committed += s.committed;
        agg.committedNops += s.committedNops;
        agg.nopsInBranchSlots += s.nopsInBranchSlots;
        agg.nopsForLoadDelay += s.nopsForLoadDelay;
        agg.squashed += s.squashed;
        agg.branches += s.branches;
        agg.branchesTaken += s.branchesTaken;
        agg.branchWastedSlots += s.branchWastedSlots;
        agg.jumps += s.jumps;
        agg.jumpWastedSlots += s.jumpWastedSlots;
        agg.icacheAccesses += machine.cpu().icache().accesses();
        agg.icacheMisses += machine.cpu().icache().misses();
        agg.icacheStalls += machine.cpu().icache().stallCycles();
        agg.ecacheAccesses += machine.cpu().ecache().accesses();
        agg.ecacheMisses += machine.cpu().ecache().misses();
        agg.ecacheStalls += machine.cpu().ecache().stallCycles();
    }
    return agg;
}

/** Print a standard harness header. */
inline void
banner(const char *id, const char *what, const char *paper)
{
    std::printf("\n================================================="
                "=====================\n");
    std::printf("%s: %s\n", id, what);
    std::printf("paper result: %s\n", paper);
    std::printf("==================================================="
                "===================\n");
}

} // namespace mipsx::bench

#endif // MIPSX_BENCH_BENCH_UTIL_HH
