/**
 * @file
 * Shared helpers for the experiment harnesses: run the whole workload
 * suite under a machine/reorganizer configuration (see
 * workload/suite_runner.hh for the parallel runner itself), report
 * failures, and dump machine-readable BENCH_<name>.json result files.
 */

#ifndef MIPSX_BENCH_BENCH_UTIL_HH
#define MIPSX_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "stats/energy.hh"
#include "stats/table.hh"
#include "workload/suite_runner.hh"
#include "workload/workload.hh"

namespace mipsx::bench
{

using workload::SuiteStats;
using workload::SuiteTiming;

/**
 * Print one line per failed workload. The parallel runner collects
 * failure records instead of letting workers write to stderr, so the
 * report is printed once, after the join, sorted by suite position.
 */
inline void
reportFailures(const std::vector<workload::SuiteFailure> &failures)
{
    for (const auto &f : failures) {
        if (!f.error.empty()) {
            std::fprintf(stderr, "!! workload %s failed: %s\n",
                         f.name.c_str(), f.error.c_str());
        } else {
            std::fprintf(stderr, "!! workload %s stopped with %s\n",
                         f.name.c_str(), f.reason.c_str());
        }
    }
}

/**
 * Run every workload in @p ws and aggregate. Runs on
 * workload::defaultSuiteJobs() workers unless @p jobs says otherwise;
 * the aggregate is identical for every job count. Host-side timing is
 * returned through @p timing when provided.
 */
inline SuiteStats
runSuite(const std::vector<workload::Workload> &ws,
         const sim::MachineConfig &machine_cfg = {},
         const reorg::ReorgConfig &reorg_cfg = {},
         bool use_profiles = false, unsigned jobs = 0,
         SuiteTiming *timing = nullptr)
{
    workload::SuiteRunOptions opts;
    opts.machine = machine_cfg;
    opts.reorg = reorg_cfg;
    opts.useProfiles = use_profiles;
    opts.jobs = jobs;
    auto res = workload::runSuite(ws, opts);
    reportFailures(res.failures);
    if (timing)
        *timing = res.timing;
    return res.stats;
}

/**
 * A flat-object JSON writer for benchmark results. Keys keep insertion
 * order; write() dumps BENCH_<name>.json into the working directory so
 * harness scripts can diff runs without scraping stdout.
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string name) : name_(std::move(name)) {}

    void
    set(const std::string &key, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        entries_.emplace_back(key, buf);
    }

    void
    set(const std::string &key, std::uint64_t v)
    {
        entries_.emplace_back(key, std::to_string(v));
    }

    void set(const std::string &key, unsigned v)
    {
        set(key, static_cast<std::uint64_t>(v));
    }

    void
    set(const std::string &key, const std::string &v)
    {
        entries_.emplace_back(key, "\"" + escape(v) + "\"");
    }

    /** Record an aggregated suite under "<prefix>.": counts + ratios. */
    void
    setSuite(const std::string &prefix, const SuiteStats &s)
    {
        set(prefix + ".workloads", std::uint64_t(s.workloads));
        set(prefix + ".failures", std::uint64_t(s.failures));
        set(prefix + ".cycles", std::uint64_t(s.cycles));
        set(prefix + ".instructions", s.committed);
        set(prefix + ".cpi", s.cpi());
        set(prefix + ".noop_fraction", s.noopFraction());
        set(prefix + ".icache_miss_ratio", s.icacheMissRatio());
        set(prefix + ".ecache_miss_ratio", s.ecacheMissRatio());
    }

    /** Record the priced energy breakdown under "<prefix>.". */
    void
    setEnergy(const std::string &prefix, const SuiteStats &s,
              const stats::EnergyCosts &costs = {})
    {
        const stats::EnergyBreakdown e =
            stats::computeEnergy(costs, s.energyCounts());
        set(prefix + ".icache", e.icache);
        set(prefix + ".ecache", e.ecache);
        set(prefix + ".memory", e.memory);
        set(prefix + ".static", e.staticCost);
        set(prefix + ".total", e.total);
        set(prefix + ".per_instruction", e.perInstruction(s.committed));
        set(prefix + ".edp", e.energyDelay(s.cycles));
    }

    /** Record host-side throughput under "<prefix>." (phase-split). */
    void
    setTiming(const std::string &prefix, const SuiteTiming &t)
    {
        set(prefix + ".host_seconds", t.hostSeconds);
        set(prefix + ".prepare_seconds", t.prepareSeconds);
        set(prefix + ".sim_seconds", t.simSeconds);
        set(prefix + ".sim_instructions", t.simInstructions);
        set(prefix + ".jobs", std::uint64_t(t.jobs));
        set(prefix + ".instr_per_host_second", t.instrPerHostSecond());
        set(prefix + ".instr_per_sim_second", t.instrPerSimSecond());
    }

    /** Write BENCH_<name>.json; returns false (with a note) on error. */
    bool
    write() const
    {
        const std::string path = "BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "!! cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(f, "{\n");
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            std::fprintf(f, "  \"%s\": %s%s\n", escape(entries_[i].first).c_str(),
                         entries_[i].second.c_str(),
                         i + 1 < entries_.size() ? "," : "");
        }
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (c == '\n') {
                out += "\\n";
                continue;
            }
            out += c;
        }
        return out;
    }

    std::string name_;
    std::vector<std::pair<std::string, std::string>> entries_;
};

/** Print a standard harness header. */
inline void
banner(const char *id, const char *what, const char *paper)
{
    std::printf("\n================================================="
                "=====================\n");
    std::printf("%s: %s\n", id, what);
    std::printf("paper result: %s\n", paper);
    std::printf("==================================================="
                "===================\n");
}

} // namespace mipsx::bench

#endif // MIPSX_BENCH_BENCH_UTIL_HH
