/**
 * @file
 * Experiment E12 (extension) — the MIPS-X multiprocessor goal.
 *
 * Paper, introduction: "The goal of the MIPS-X project was to ... build
 * a single processor with a peak rate of 20 MIPS and then to use 6-10 of
 * these processors as the nodes in a shared memory multiprocessor. The
 * resulting machine would be about two orders of magnitude more powerful
 * than a VAX 11/780 minicomputer."
 *
 * The single-chip paper never evaluates the multiprocessor; this harness
 * does, on the substrate the project planned around: N pipelined CPUs
 * with private I-caches and Ecaches on one arbitrated memory bus with
 * invalidate-on-write snooping. Two parallel workloads bracket the
 * space: a memory-bound strided sum (bus-limited) and a compute-bound
 * polynomial (near-linear).
 */

#include <cstdio>

#include "bench_util.hh"
#include "mp/multi_machine.hh"
#include "reorg/scheduler.hh"

using namespace mipsx;
using namespace mipsx::bench;

int
main()
{
    banner("E12 (extension)", "the 6-10 CPU shared-memory multiprocessor",
           "~two orders of magnitude over a VAX 11/780 (~0.5 MIPS)");

    for (const auto &w : workload::parallelWorkloads()) {
        const auto prog = assembler::assemble(w.source, w.name + ".s");
        const auto sched = reorg::reorganize(prog, {}, nullptr);

        stats::Table table(
            strformat("%s — %s", w.name.c_str(), w.description.c_str()),
            {"cpus", "cycles", "speedup", "efficiency", "bus busy",
             "bus wait", "invals", "agg MIPS@20MHz", "x VAX"});

        cycle_t base = 0;
        for (const unsigned cpus : {1u, 2u, 4u, 6u, 8u, 10u}) {
            mp::MultiMachineConfig mc;
            mc.cpus = cpus;
            mp::MultiMachine machine(mc);
            machine.load(sched);
            const auto r = machine.run();
            if (!r.allHalted)
                fatal("parallel workload failed");
            if (cpus == 1)
                base = r.cycles;

            const double speedup = double(base) / double(r.cycles);
            const double busBusy =
                double(machine.bus().busyCycles()) / double(r.cycles);
            // Aggregate delivered MIPS at the 20 MHz target: total
            // instructions over the wall-clock the run took.
            const double mips =
                double(r.instructions) / (double(r.cycles) / 20.0);
            const double vax = mips / 0.5; // VAX 11/780 ~ 0.5 MIPS
            table.addRow(
                {strformat("%u", cpus),
                 strformat("%llu", (unsigned long long)r.cycles),
                 stats::Table::num(speedup, 2),
                 stats::Table::pct(speedup / cpus),
                 stats::Table::pct(busBusy),
                 strformat("%llu", (unsigned long long)r.busWaitCycles),
                 strformat("%llu", (unsigned long long)r.invalidations),
                 stats::Table::num(mips, 1),
                 stats::Table::num(vax, 0)});
        }
        table.print(std::cout);
    }

    // Write-policy coda. Smith (which the paper cites): "With respect
    // to performance, there is no clear choice ... a good implementation
    // of write-through seldom has to wait" — and indeed the issuing
    // CPU's cycles are a wash below. What is NOT a wash is the shared
    // bus: write-through carries every store, the coherence-vs-traffic
    // tradeoff the planned multiprocessor would have faced head-on.
    {
        const auto w = workload::parallelWorkloads().at(2); // store-heavy
        const auto prog = assembler::assemble(w.source, w.name + ".s");
        const auto sched = reorg::reorganize(prog, {}, nullptr);
        stats::Table wp("Write policy at 8 CPUs (store-heavy pscale)",
                        {"policy", "cycles", "bus busy", "bus wait"});
        for (const bool wt : {false, true}) {
            mp::MultiMachineConfig mc;
            mc.cpus = 8;
            mc.cpu.ecache.writeThrough = wt;
            mp::MultiMachine machine(mc);
            machine.load(sched);
            const auto r = machine.run();
            if (!r.allHalted)
                fatal("write-policy run failed");
            wp.addRow({wt ? "write-through (4-deep buffer)" : "copy-back",
                       strformat("%llu", (unsigned long long)r.cycles),
                       stats::Table::pct(
                           double(machine.bus().busyCycles()) /
                           double(r.cycles)),
                       strformat("%llu",
                                 (unsigned long long)r.busWaitCycles)});
        }
        wp.print(std::cout);
    }

    std::printf(
        "Expected shape: the compute-bound workload scales near-linearly "
        "into the\n6-10 CPU range and crosses ~100x VAX (the project's "
        "goal); the memory-bound\nworkload saturates as the shared bus "
        "approaches full occupancy — the system\npressure that motivated "
        "keeping all instruction fetch on-chip. Write-through\nfeeds that "
        "same bus every store, compounding the saturation.\n");
    return 0;
}
